//! Chaos acceptance tests: deterministic fault injection, cooperative
//! deadlines/CANCEL, the degradation ladder, rate limiting, slow-loris
//! hardening and worker-panic recovery — all against a real loopback
//! `spectral-orderd` server.
//!
//! Every fault here is driven by a seeded [`FaultPlane`], so each failure
//! is reproducible bit-for-bit; and with the plane disabled the service is
//! proven bit-identical across solver thread counts.

use se_service::json::Json;
use se_service::proto::{MatrixFormat, MatrixSource, OrderRequest};
use se_service::{serve, sites, Client, ClientError, Config, FaultPlane};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;
use std::io::{Read, Write};
use std::time::Duration;

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    }
}

fn assert_valid_perm(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n);
    let mut seen = vec![false; n];
    for &v in perm {
        assert!(v < n && !seen[v], "not a permutation");
        seen[v] = true;
    }
}

/// Forced RQI/Lanczos non-convergence: the service still answers with a
/// *valid* permutation — RCM, rung 3 of the ladder — marked
/// `"degraded":true` with reason `not_converged`, the degradation shows up
/// in STATS and the Prometheus exposition, and (because non-convergence is
/// a deterministic matrix property) the degraded entry is cached.
#[test]
fn forced_non_convergence_degrades_to_a_valid_rcm_permutation() {
    let faults = FaultPlane::seeded(42);
    faults.arm(sites::LANCZOS_CONVERGE);
    faults.arm(sites::RQI_CONVERGE);
    let handle = serve(Config {
        faults,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(14, 11);

    let r = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    assert_eq!(r.alg, "RCM", "rung 3 must have produced the result");
    assert_eq!(r.degraded.as_deref(), Some("not_converged"));
    assert!(!r.cache_hit);
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());

    // The degraded permutation is exactly what a direct RCM run produces.
    let direct = se_order::order(&g, se_order::Algorithm::Rcm).unwrap();
    assert_eq!(r.perm.as_ref().unwrap().order(), direct.perm.order());

    // not_converged is cacheable: the identical request hits, and the hit
    // still carries the degradation marker.
    let hit = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    assert!(hit.cache_hit);
    assert_eq!(hit.degraded.as_deref(), Some("not_converged"));
    assert_eq!(hit.perm, r.perm);

    let stats = client.stats().unwrap();
    assert_eq!(
        stats
            .get("degraded_orders")
            .and_then(|t| t.get("not_converged"))
            .and_then(Json::as_u64),
        Some(1),
        "stats must count the degradation once (the hit is not a recompute)"
    );
    let text = client.metrics().unwrap();
    assert!(
        text.contains(r#"se_degraded_orders_total{reason="not_converged"} 1"#),
        "prometheus exposition missing the degraded counter:\n{text}"
    );

    client.shutdown().unwrap();
    handle.join();
}

/// An expired deadline aborts a *running* spectral solve at an iteration
/// boundary (the trace records `budget_abort` on the aborted span) and the
/// ladder still returns a valid RCM permutation with reason `deadline`
/// inside the request's timeout window.
#[test]
fn expired_deadline_aborts_mid_solve_and_degrades() {
    let handle = serve(Config {
        cache_budget_bytes: 0, // force the compute path
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Large enough that the spectral solve cannot finish inside the
    // deadline on any realistic machine, while RCM (linear-time) still
    // handles it in far less than the solver budget the timeout leaves.
    // The timeout is sized so its reserved slice (timeout/8, capped at
    // 500 ms — see `solver_deadline`) covers the post-abort RCM rung and
    // response encoding even on a slow single-core debug build, where
    // RCM on 160k vertices alone costs a few hundred milliseconds.
    let g = meshgen::grid2d(400, 400);
    let mut req = chaco_request(&g, se_order::Algorithm::Spectral);
    req.timeout_ms = Some(4000);
    req.trace = true;
    let r = client.order(req).unwrap();
    assert_eq!(r.alg, "RCM");
    assert_eq!(r.degraded.as_deref(), Some("deadline"));
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    let trace = r.trace.as_deref().expect("traced request");
    assert!(
        trace.contains(r#""budget_abort":1"#),
        "the aborted span must record the budget abort: {trace}"
    );
    assert!(
        trace.contains(r#""rung":3"#),
        "the ladder must record which rung answered: {trace}"
    );

    let stats = client.stats().unwrap();
    let aborts = stats.get("budget_aborts").expect("budget_aborts table");
    let total: u64 = match aborts {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("budget_aborts must be a keyed table, got {other:?}"),
    };
    assert!(total >= 1, "an abort stage must be counted");
    let text = client.metrics().unwrap();
    assert!(
        text.contains("se_budget_aborts_total{stage="),
        "prometheus exposition missing the abort counter:\n{text}"
    );

    client.shutdown().unwrap();
    handle.join();
}

/// CANCEL reaches into a solve that is already *running*: the shared
/// budget's cancel flag aborts it at the next iteration boundary (counted
/// in `budget_aborts`) instead of letting it compute to completion, and
/// the submitter gets the fatal cancellation error.
#[test]
fn cancel_aborts_a_running_solve_at_an_iteration_boundary() {
    let handle = serve(Config {
        cache_budget_bytes: 0,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr();

    let order_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let g = meshgen::grid2d(150, 150);
        let mut req = chaco_request(&g, se_order::Algorithm::Spectral);
        req.id = Some(9);
        client.order(req)
    });
    // Wait until the worker has started computing — the cache-miss counter
    // ticks right before the solve begins — so the cancel provably reaches
    // a *running* solve, not one still queued (a queued job is dropped
    // before it computes and would never count a budget abort).
    let mut control = Client::connect(addr).unwrap();
    let t0 = std::time::Instant::now();
    loop {
        let stats = control.stats().unwrap();
        if stats.get("cache_misses").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "the order never reached the solver"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // Inside the solve now (it runs for seconds); flip its budget.
    std::thread::sleep(Duration::from_millis(100));
    assert!(control.cancel(9).unwrap(), "id 9 must still be in flight");

    let err = order_thread.join().unwrap().expect_err("must be cancelled");
    match err {
        ClientError::Server(e) => {
            assert!(!e.retriable, "a cancellation is final");
            assert!(e.error.contains("cancelled"), "got: {}", e.error);
        }
        other => panic!("expected the cancellation error, got {other}"),
    }

    let stats = control.stats().unwrap();
    assert_eq!(stats.get("cancelled").and_then(Json::as_u64), Some(1));
    // The running solve observed the flipped budget mid-flight — it did
    // not run to completion.
    let aborts = stats.get("budget_aborts").expect("budget_aborts table");
    let total: u64 = match aborts {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("budget_aborts must be a keyed table, got {other:?}"),
    };
    assert!(total >= 1, "the cancel must abort the solver cooperatively");

    control.shutdown().unwrap();
    handle.join();
}

/// With the fault plane disabled and no deadline pressure, permutations
/// are bit-identical across solver thread counts and identical to the
/// direct library path — the robustness layer is a strict no-op.
#[test]
fn disabled_fault_plane_is_bit_identical_across_thread_counts() {
    let handle = serve(Config {
        cache_budget_bytes: 0, // recompute every request
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::annulus_tri(8, 40, 0xA11CE);

    let reference = se_order::order(&g, se_order::Algorithm::Spectral).unwrap();
    for threads in [1usize, 2, 4] {
        let mut req = chaco_request(&g, se_order::Algorithm::Spectral);
        req.threads = Some(threads);
        let r = client.order(req).unwrap();
        assert!(r.degraded.is_none(), "healthy solve must not degrade");
        assert_eq!(r.alg, "SPECTRAL");
        assert_eq!(
            r.perm.as_ref().unwrap().order(),
            reference.perm.order(),
            "threads={threads} must be bit-identical to the library path"
        );
    }

    client.shutdown().unwrap();
    handle.join();
}

/// A client over its token-bucket rate gets the fatal `rate limited` error
/// (and the counter ticks), but the connection survives and serves again
/// once the bucket replenishes.
#[test]
fn rate_limited_client_gets_fatal_error_then_recovers() {
    let handle = serve(Config {
        rate_limit: Some((2, 1)), // 2 tokens/s, burst 1
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(8, 8);

    let first = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!first.cache_hit);

    // The burst is spent; the immediate follow-up is refused.
    let err = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert!(!e.retriable, "rate limiting is fatal, not retriable");
            assert!(e.error.contains("rate limited"), "got: {}", e.error);
        }
        other => panic!("expected the rate-limit error, got {other}"),
    }

    // Same connection, after the bucket replenishes (2/s ⇒ ~500 ms/token).
    std::thread::sleep(Duration::from_millis(700));
    let again = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(again.cache_hit, "the earlier result is still cached");

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("rate_limited").and_then(Json::as_u64), Some(1));
    let text = client.metrics().unwrap();
    assert!(text.contains("se_rate_limited_total 1"), "got:\n{text}");

    client.shutdown().unwrap();
    handle.join();
}

/// A slow-loris client — half a request line, then silence — is
/// disconnected by the socket I/O deadline instead of pinning its session
/// thread forever, and the server keeps serving everyone else.
#[test]
fn stalling_client_is_disconnected_by_the_io_timeout() {
    let handle = serve(Config {
        io_timeout_ms: Some(200),
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr();

    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half an ORDER line, never finished.
    stalled.write_all(br#"{"cmd":"ORDER","alg":"#).unwrap();
    stalled.flush().unwrap();
    let mut buf = [0u8; 64];
    // The server must give up on us and close; EOF (or a reset) arrives
    // well before our own 10 s guard.
    let t0 = std::time::Instant::now();
    match stalled.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected disconnection, got {n} bytes"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "disconnect must come from the io timeout, not our read guard"
    );

    // The daemon is unharmed.
    let mut client = Client::connect(addr).unwrap();
    let g = meshgen::grid2d(7, 7);
    let r = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    client.shutdown().unwrap();
    handle.join();
}

/// A worker panic (injected at the `service.worker.panic` site) costs only
/// the one request: the submitter gets a fatal error, no lock stays
/// poisoned, and the very next request on the same daemon succeeds.
#[test]
fn worker_panic_fails_one_request_and_the_daemon_recovers() {
    let faults = FaultPlane::seeded(7);
    faults.arm_times(sites::WORKER_PANIC, 1);
    let handle = serve(Config {
        faults,
        workers: 1, // the panicking worker is the only worker
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(9, 9);

    let err = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert!(e.error.contains("worker dropped"), "got: {}", e.error)
        }
        other => panic!("expected the dropped-request error, got {other}"),
    }

    // Same daemon, same (sole) worker thread: fully functional.
    let r = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!r.cache_hit, "the panicked request must not have cached");
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("orders").and_then(Json::as_u64), Some(2));

    client.shutdown().unwrap();
    handle.join();
}

/// The client retry helper rides out transient `server busy` rejections:
/// with the connection limit exhausted, a direct order fails retriable,
/// while `order_with_retry` keeps re-dialling until a slot frees up.
#[test]
fn order_with_retry_rides_out_busy_rejections() {
    let handle = serve(Config {
        max_conns: 1,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr();
    let g = meshgen::grid2d(10, 10);

    // Occupy the single slot...
    let hog = Client::connect(addr).unwrap();
    // ...so a plain connect+order is rejected as busy (retriable).
    let direct = Client::connect(addr)
        .and_then(|mut c| c.order(chaco_request(&g, se_order::Algorithm::Rcm)));
    match direct.expect_err("the slot is taken") {
        ClientError::Server(e) => assert!(e.retriable, "busy must be retriable"),
        ClientError::Io(_) => {} // the reject can also surface as EOF/reset
        other => panic!("expected busy/io, got {other}"),
    }

    // Free the slot mid-retry.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(hog);
    });
    let policy = se_service::RetryPolicy {
        max_attempts: 20,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(200),
        seed: 3,
    };
    let r = se_service::order_with_retry(
        addr,
        se_service::FrameMode::Binary,
        &chaco_request(&g, se_order::Algorithm::Rcm),
        &policy,
    )
    .expect("retry must eventually land");
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    release.join().unwrap();

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

/// Forced `tracemin.outer.converge` non-convergence (with Lanczos also
/// armed so the rung-2 retry fails too): `alg:"tracemin"` walks the ladder
/// to a *bit-exact* RCM permutation with `degraded_reason` on the wire —
/// the new eigensolver sits on exactly the same degradation path as the
/// multilevel one.
#[test]
fn forced_tracemin_non_convergence_degrades_to_a_valid_rcm_permutation() {
    let faults = FaultPlane::seeded(42);
    faults.arm(sites::TRACEMIN_OUTER_CONVERGE);
    faults.arm(sites::LANCZOS_CONVERGE); // kill rung 2 as well
    let handle = serve(Config {
        faults,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(14, 11);

    let r = client
        .order(chaco_request(&g, se_order::Algorithm::TraceMin))
        .unwrap();
    assert_eq!(r.alg, "RCM", "rung 3 must have produced the result");
    assert_eq!(r.degraded.as_deref(), Some("not_converged"));
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());

    // The degraded permutation is exactly what a direct RCM run produces.
    let direct = se_order::order(&g, se_order::Algorithm::Rcm).unwrap();
    assert_eq!(r.perm.as_ref().unwrap().order(), direct.perm.order());

    client.shutdown().unwrap();
    handle.join();
}

/// A mid-solve deadline aborts a running tracemin solve at an iteration
/// boundary (outer-loop or inner-MINRES budget check) and the ladder still
/// answers with a valid RCM permutation, reason `deadline`, inside the
/// request's timeout window.
#[test]
fn tracemin_deadline_walks_the_ladder_to_rcm() {
    let handle = serve(Config {
        cache_budget_bytes: 0, // force the compute path
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Large enough that the tracemin solve cannot finish inside the
    // deadline (same sizing rationale as the spectral deadline test).
    let g = meshgen::grid2d(400, 400);
    let mut req = chaco_request(&g, se_order::Algorithm::TraceMin);
    req.timeout_ms = Some(4000);
    req.trace = true;
    let r = client.order(req).unwrap();
    assert_eq!(r.alg, "RCM");
    assert_eq!(r.degraded.as_deref(), Some("deadline"));
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    let trace = r.trace.as_deref().expect("traced request");
    assert!(
        trace.contains(r#""tracemin""#),
        "the tracemin span must be recorded: {trace}"
    );
    assert!(
        trace.contains(r#""rung":3"#),
        "the ladder must record which rung answered: {trace}"
    );

    let stats = client.stats().unwrap();
    let aborts = stats.get("budget_aborts").expect("budget_aborts table");
    let total: u64 = match aborts {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("budget_aborts must be a keyed table, got {other:?}"),
    };
    assert!(total >= 1, "an abort stage must be counted");

    client.shutdown().unwrap();
    handle.join();
}

/// CANCEL reaches into a *running* tracemin solve: the shared budget's
/// cancel flag aborts it at the next iteration boundary instead of letting
/// the block iteration run to completion.
#[test]
fn cancel_aborts_a_running_tracemin_solve_at_an_iteration_boundary() {
    let handle = serve(Config {
        cache_budget_bytes: 0,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr();

    let order_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let g = meshgen::grid2d(150, 150);
        let mut req = chaco_request(&g, se_order::Algorithm::TraceMin);
        req.id = Some(9);
        client.order(req)
    });
    // Wait until the worker is provably computing (the cache-miss counter
    // ticks right before the solve starts), then cancel mid-flight.
    let mut control = Client::connect(addr).unwrap();
    let t0 = std::time::Instant::now();
    loop {
        let stats = control.stats().unwrap();
        if stats.get("cache_misses").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "the order never reached the solver"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert!(control.cancel(9).unwrap(), "id 9 must still be in flight");

    let err = order_thread.join().unwrap().expect_err("must be cancelled");
    match err {
        ClientError::Server(e) => {
            assert!(!e.retriable, "a cancellation is final");
            assert!(e.error.contains("cancelled"), "got: {}", e.error);
        }
        other => panic!("expected the cancellation error, got {other}"),
    }

    let stats = control.stats().unwrap();
    assert_eq!(stats.get("cancelled").and_then(Json::as_u64), Some(1));
    let aborts = stats.get("budget_aborts").expect("budget_aborts table");
    let total: u64 = match aborts {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("budget_aborts must be a keyed table, got {other:?}"),
    };
    assert!(total >= 1, "the cancel must abort the solver cooperatively");

    control.shutdown().unwrap();
    handle.join();
}

/// The wire acceptance contract for `alg:"tracemin"`: a valid permutation
/// whose envelope is within 5% of `alg:"spectral"`, bit-identical across
/// solver thread counts — and, because of that, served from one cache entry
/// regardless of the requested thread count.
#[test]
fn tracemin_over_the_wire_is_thread_invariant_and_close_to_spectral() {
    let handle = serve(Config::default()).expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::standin("CAN1072").unwrap().pattern;

    let spectral = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    let mut req = chaco_request(&g, se_order::Algorithm::TraceMin);
    req.threads = Some(1);
    let base = client.order(req).unwrap();
    assert_eq!(base.alg, "TRACEMIN");
    assert!(base.degraded.is_none(), "healthy solve must not degrade");
    assert!(!base.cache_hit);
    assert_valid_perm(base.perm.as_ref().unwrap().order(), g.n());

    let (e_tm, e_sp) = (
        base.stats.envelope_size as f64,
        spectral.stats.envelope_size as f64,
    );
    assert!(
        (e_tm - e_sp).abs() <= 0.05 * e_sp,
        "tracemin envelope {e_tm} vs spectral {e_sp}"
    );

    // The thread count is not part of the cache key: requests at other
    // thread counts are *hits* on the threads=1 entry, which is only sound
    // because the permutation is bit-identical at every thread count.
    for threads in [2usize, 4, 8] {
        let mut req = chaco_request(&g, se_order::Algorithm::TraceMin);
        req.threads = Some(threads);
        let r = client.order(req).unwrap();
        assert!(r.cache_hit, "threads={threads} must hit the cached entry");
        assert_eq!(r.perm, base.perm, "threads={threads} diverged");
    }

    client.shutdown().unwrap();
    handle.join();
}
