//! Mesh acceptance tests: several real `spectral-orderd` nodes on loopback
//! ports sharing one consistent-hash keyspace.
//!
//! This is ISSUE 7's acceptance demo in executable form: a 3-node mesh
//! serves a remote-owned key bit-identically to a single node (forwarded
//! on the first miss, relayed from the owner's cache afterwards);
//! replication gives ring successors local hits; STATS/METRICS surface
//! the mesh; and a draining node ships its spill files to the keys' new
//! owner so the entries survive its shutdown.

use se_service::json::Json;
use se_service::proto::{MatrixFormat, MatrixSource, OrderRequest};
use se_service::{serve, Client, Config, ServerHandle};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;
use std::net::TcpListener;

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    }
}

fn assert_valid_perm(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n);
    let mut seen = vec![false; n];
    for &v in perm {
        assert!(v < n && !seen[v], "not a permutation");
        seen[v] = true;
    }
}

/// Reserves `n` distinct loopback addresses: bind ephemeral listeners,
/// record their ports, drop the listeners just before the nodes re-bind
/// them for real. Every mesh member needs the full address list *before*
/// any member starts, so ephemeral self-assignment cannot work here.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Starts one node per address, each configured with the *other*
/// addresses as peers (the node's own bound address joins the ring
/// automatically).
fn start_mesh(
    addrs: &[String],
    replicas: usize,
    mut tweak: impl FnMut(usize, &mut Config),
) -> Vec<ServerHandle> {
    let handles = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            let mut cfg = Config {
                addr: addr.clone(),
                peers,
                replicas,
                // This suite exercises the synchronous mesh paths with
                // exact counter assertions; park the background healing
                // (heartbeats, hint replay, anti-entropy) far beyond any
                // test's lifetime so it cannot perturb the counts. The
                // membership suite owns the background machinery.
                peer_heartbeat_ms: 600_000,
                antientropy_every: 0,
                ..Config::default()
            };
            tweak(i, &mut cfg);
            serve(cfg).expect("bind reserved mesh port")
        })
        .collect::<Vec<_>>();
    // Wait out every node's startup JOIN + WARM pull: a WARM response
    // landing mid-test would deliver entries outside the synchronous
    // paths this suite pins down with exact counts.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handles.iter().all(|h| h.engine().mesh_warmed()) {
        assert!(
            std::time::Instant::now() < deadline,
            "mesh startup warm-up did not finish"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    handles
}

/// Probes grid graphs until one's cache key is owned by `node` (all ring
/// views agree, so any handle's mesh works as the oracle).
fn graph_owned_by(handle: &ServerHandle, node: &str) -> (SymmetricPattern, u64) {
    let mesh = handle.engine().mesh().expect("node is in a mesh");
    for w in 8..200 {
        let g = meshgen::grid2d(w, 7);
        let key = se_service::cache::pattern_key(&g, se_order::Algorithm::Rcm, false);
        if mesh.ring().owner(key) == node {
            return (g, key);
        }
    }
    panic!("no probe graph owned by {node}");
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats.get(name).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

/// The headline acceptance test: a key owned by a remote node is served
/// through any member bit-identically to a standalone server — forwarded
/// and computed at the owner on the first ask, relayed from the owner's
/// cache afterwards — and STATS surfaces both the mesh shape and the
/// forward counters.
#[test]
fn three_node_mesh_serves_remote_owned_keys_bit_identically() {
    let addrs = reserve_addrs(3);
    let handles = start_mesh(&addrs, 1, |_, _| {});
    let (g, key) = graph_owned_by(&handles[0], &addrs[2]);
    assert!(!handles[0].engine().mesh().unwrap().owns(key));

    // The ground truth: the same request against a plain single node.
    let reference = {
        let solo = serve(Config::default()).expect("bind ephemeral port");
        let mut c = Client::connect(solo.local_addr()).unwrap();
        c.order(chaco_request(&g, se_order::Algorithm::Rcm))
            .unwrap()
    };
    assert_valid_perm(reference.perm.as_ref().unwrap().order(), g.n());

    // Ask a non-owner: the request forwards to the owner, which computes.
    let mut c0 = Client::connect(handles[0].local_addr()).unwrap();
    let first = c0
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!first.cache_hit, "the owner computed this fresh");
    assert_eq!(first.perm, reference.perm, "forwarded ≠ standalone");
    assert_eq!(first.stats, reference.stats);
    assert_eq!(first.alg, reference.alg);
    assert_eq!((first.n, first.nnz), (reference.n, reference.nnz));

    // Ask the *other* non-owner: forwards again, now a cache hit at the
    // owner, relayed hit-marker and all.
    let mut c1 = Client::connect(handles[1].local_addr()).unwrap();
    let relayed = c1
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(relayed.cache_hit, "the owner's cache answered");
    assert_eq!(relayed.perm, reference.perm);
    assert_eq!(relayed.stats, reference.stats);

    // Ask the owner directly: a plain local hit, no mesh involved.
    let mut c2 = Client::connect(handles[2].local_addr()).unwrap();
    let local = c2
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(local.cache_hit);
    assert_eq!(local.perm, reference.perm);

    // STATS: the forwarders counted their hop, the owner forwarded
    // nothing, and every node reports the mesh shape.
    let s0 = c0.stats().unwrap();
    assert_eq!(counter(&s0, "peer_forwards"), 1);
    assert_eq!(counter(&s0, "peer_forward_failures"), 0);
    let s2 = c2.stats().unwrap();
    assert_eq!(counter(&s2, "peer_forwards"), 0);
    let mesh = s0.get("mesh").expect("mesh object in STATS");
    assert_eq!(mesh.get("peers").and_then(Json::as_u64), Some(3));
    assert_eq!(mesh.get("replicas").and_then(Json::as_u64), Some(1));
    assert_eq!(
        mesh.get("self").and_then(Json::as_str),
        Some(addrs[0].as_str())
    );

    // METRICS: the mesh gauges and forward counters are exposed.
    let text = c0.metrics().unwrap();
    assert!(text.contains("se_peer_mesh_size 3"));
    assert!(text.contains("se_peer_replication_factor 1"));
    assert!(text.contains("se_peer_forwards_total 1"));
}

/// With `--replicas 2` the owner pushes each freshly computed entry to
/// its ring successor, which then answers reads for the key from its own
/// cache — no forward hop — while nodes outside the replica set still
/// relay.
#[test]
fn replication_gives_ring_successors_local_hits() {
    let addrs = reserve_addrs(3);
    let handles = start_mesh(&addrs, 2, |_, _| {});
    let (g, key) = graph_owned_by(&handles[0], &addrs[0]);
    let replica_set: Vec<String> = handles[0]
        .engine()
        .mesh()
        .unwrap()
        .ring()
        .replicas(key, 2)
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(replica_set[0], addrs[0]);
    let successor = replica_set[1].clone();
    let successor_idx = addrs.iter().position(|a| *a == successor).unwrap();
    let outside_idx = (0..3)
        .find(|i| addrs[*i] != addrs[0] && addrs[*i] != successor)
        .unwrap();

    // Compute at the owner; the entry is pushed to the successor inline.
    let mut owner = Client::connect(handles[0].local_addr()).unwrap();
    let computed = owner
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!computed.cache_hit);
    let owner_stats = owner.stats().unwrap();
    assert_eq!(counter(&owner_stats, "peer_replications"), 1);
    assert_eq!(counter(&owner_stats, "peer_replication_failures"), 0);

    // The successor answers from its own cache: a hit with zero forwards.
    let mut succ = Client::connect(handles[successor_idx].local_addr()).unwrap();
    let from_replica = succ
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(from_replica.cache_hit, "replica must hit locally");
    assert_eq!(from_replica.perm, computed.perm);
    assert_eq!(from_replica.stats, computed.stats);
    let succ_stats = succ.stats().unwrap();
    assert_eq!(counter(&succ_stats, "peer_entries_received"), 1);
    assert_eq!(counter(&succ_stats, "peer_forwards"), 0);

    // A node outside the replica set still forwards and relays the hit.
    let mut outside = Client::connect(handles[outside_idx].local_addr()).unwrap();
    let relayed = outside
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(relayed.cache_hit);
    assert_eq!(relayed.perm, computed.perm);
    assert_eq!(counter(&outside.stats().unwrap(), "peer_forwards"), 1);
}

/// A draining node ships its spill files to the keys' owner on the ring
/// without itself before acking SHUTDOWN, so cached work survives a
/// rolling restart: the surviving node answers the drained node's key as
/// a local cache hit.
#[test]
fn shutdown_drain_hands_spill_files_to_the_successor() {
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("se-mesh-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
    let addrs = reserve_addrs(2);
    let dirs = [temp_dir("drain-0"), temp_dir("drain-1")];
    let handles = start_mesh(&addrs, 1, |i, cfg| {
        cfg.cache_dir = Some(dirs[i].clone());
    });
    let (g, _) = graph_owned_by(&handles[0], &addrs[0]);

    let mut owner = Client::connect(handles[0].local_addr()).unwrap();
    let computed = owner
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!computed.cache_hit);

    // SHUTDOWN acks only after the drain — and the drain's handoff — ran.
    owner.shutdown().expect("clean drain");

    let mut survivor = Client::connect(handles[1].local_addr()).unwrap();
    let inherited = survivor
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(inherited.cache_hit, "handed-off entry must hit");
    assert_eq!(inherited.perm, computed.perm);
    assert_eq!(inherited.stats, computed.stats);
    assert_eq!(inherited.degraded, computed.degraded);
    let s = survivor.stats().unwrap();
    assert_eq!(counter(&s, "peer_entries_received"), 1);

    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// REPLICATE is peer-to-peer only: a replicated entry is served as an
/// authoritative answer, so pushes are accepted solely from source IPs
/// the configured peers resolve to — a plain client (or a non-mesh node)
/// gets a fatal refusal and nothing is stored.
#[test]
fn replicate_is_refused_from_non_peer_sources() {
    // A mesh member whose peers live on another segment: our loopback
    // connection is not a peer source, however well-formed the bytes.
    let meshed = serve(Config {
        peers: vec!["10.255.255.1:7878".to_string()],
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let mut c = Client::connect(meshed.local_addr()).unwrap();
    let err = c.replicate(b"SOCF-not-even-validated").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("REPLICATE refused"), "got: {msg}");
    assert_eq!(
        counter(&c.stats().unwrap(), "peer_entries_received"),
        0,
        "nothing stored"
    );

    // A node outside any mesh accepts no pushes at all — same refusal
    // through the legacy transport for good measure.
    for legacy in [false, true] {
        let solo = serve(Config {
            legacy_transport: legacy,
            ..Config::default()
        })
        .expect("bind ephemeral port");
        let mut c = Client::connect(solo.local_addr()).unwrap();
        let err = c.replicate(b"SOCF-whatever").unwrap_err();
        assert!(
            err.to_string().contains("REPLICATE refused"),
            "legacy={legacy}"
        );
    }
}

/// A mesh member's ring identity is its textual bound address, which its
/// peers must be able to list verbatim — so `--peers` with an unspecified
/// bind address (`0.0.0.0`) is a configuration error, refused at startup
/// instead of joining the ring as a phantom member.
#[test]
fn mesh_refuses_unspecified_bind_address() {
    let err = match serve(Config {
        addr: "0.0.0.0:0".to_string(),
        peers: vec!["127.0.0.1:7878".to_string()],
        ..Config::default()
    }) {
        Err(e) => e,
        Ok(_) => panic!("phantom ring identity must be refused"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("routable"), "got: {err}");
}

/// The same ORDER through the legacy thread-per-connection transport:
/// REPLICATE and forwarding are session-layer-agnostic, so a mesh of
/// legacy-transport nodes behaves identically.
#[test]
fn mesh_works_over_the_legacy_transport_too() {
    let addrs = reserve_addrs(2);
    let handles = start_mesh(&addrs, 1, |_, cfg| {
        cfg.legacy_transport = true;
    });
    let (g, _) = graph_owned_by(&handles[0], &addrs[1]);

    let mut c0 = Client::connect(handles[0].local_addr()).unwrap();
    let forwarded = c0
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!forwarded.cache_hit);
    assert_valid_perm(forwarded.perm.as_ref().unwrap().order(), g.n());
    assert_eq!(counter(&c0.stats().unwrap(), "peer_forwards"), 1);

    // Asking again relays the owner's cache hit through a second forward.
    let hit = c0
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(hit.cache_hit);
    assert_eq!(hit.perm, forwarded.perm);
}
