//! Self-healing mesh tests: failure detection, live membership, hinted
//! handoff, anti-entropy warm-up and peer flapping, against real loopback
//! nodes with aggressively small suspicion windows.
//!
//! The contract under churn is the same graceful-degradation promise the
//! static mesh makes — no client-visible fatal error, bit-identical
//! permutations — plus the self-healing additions: a silent member is
//! marked `Suspect` then `Dead` and routed around, a SHUTDOWN announces
//! LEAVE so the range moves immediately, writes toward an unreachable
//! replica park as hints, and a restarted member JOINs, warms its range
//! and has the hints replayed to it.

use se_service::json::Json;
use se_service::proto::{MatrixFormat, MatrixSource, OrderRequest};
use se_service::{serve, Client, Config, ServerHandle};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    }
}

fn assert_valid_perm(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n);
    let mut seen = vec![false; n];
    for &v in perm {
        assert!(v < n && !seen[v], "not a permutation");
        seen[v] = true;
    }
}

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Millisecond windows small enough that a whole
/// silence → Suspect → Dead → rejoin cycle fits in a test, but wide
/// enough (≥ several heartbeats) not to flap on a loaded CI runner.
fn fast_detector(cfg: &mut Config) {
    cfg.peer_heartbeat_ms = 100;
    cfg.peer_suspect_after_ms = 400;
    cfg.peer_dead_after_ms = 900;
    cfg.antientropy_every = 4;
}

/// Starts one mesh member with the fast failure detector. `peers` lists
/// every OTHER member's address.
fn start_member(addr: &str, peers: Vec<String>, replicas: usize) -> ServerHandle {
    let mut cfg = Config {
        addr: addr.to_string(),
        peers,
        replicas,
        ..Config::default()
    };
    fast_detector(&mut cfg);
    serve(cfg).expect("bind reserved mesh port")
}

fn start_mesh(addrs: &[String], replicas: usize) -> Vec<ServerHandle> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            start_member(addr, peers, replicas)
        })
        .collect()
}

/// Probes grid graphs until one's cache key — for the algorithm the test
/// will actually request — is owned by `node` on the *natural* ring.
fn graph_owned_by(handle: &ServerHandle, node: &str, alg: se_order::Algorithm) -> SymmetricPattern {
    let mesh = handle.engine().mesh().expect("node is in a mesh");
    let ring = mesh.ring();
    for w in 8..200 {
        let g = meshgen::grid2d(w, 7);
        let key = se_service::cache::pattern_key(&g, alg, false);
        if ring.owner(key) == node {
            return g;
        }
    }
    panic!("no probe graph owned by {node}");
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats.get(name).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

/// Sum of every `from:to` cell in the STATS `peer_transitions` object.
fn transition_total(stats: &Json) -> u64 {
    match stats.get("peer_transitions") {
        Some(Json::Obj(rows)) => rows.iter().map(|(_, v)| v.as_u64().unwrap_or(0)).sum(),
        _ => 0,
    }
}

/// Polls `probe` (every 25 ms, up to `secs` seconds) until it returns
/// true; panics with `what` otherwise.
fn wait_for(secs: u64, what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

/// PING answers from anyone; JOIN/LEAVE reshape the ring live: after a
/// member announces LEAVE its range belongs to the survivor immediately
/// (no suspicion wait), and a JOIN puts it back.
#[test]
fn ping_join_leave_reshape_the_ring_live() {
    let addrs = reserve_addrs(2);
    let handles = start_mesh(&addrs, 1);

    let mut c = Client::connect(handles[0].local_addr()).unwrap();
    let pong = c.ping("probe").expect("PING is open to anyone");
    assert_eq!(pong, addrs[0], "the pong names the responder");

    // A key node 1 owns while both are on the ring…
    let g = graph_owned_by(&handles[0], &addrs[1], se_order::Algorithm::Rcm);

    // …then announce node 1's departure to node 0 (loopback source
    // passes the member gate): the key moves to node 0 at once.
    c.leave(&addrs[1]).expect("LEAVE from a member source");
    let mesh0 = handles[0].engine().mesh().unwrap();
    assert!(
        !mesh0.ring().contains(&addrs[1]),
        "a departed member leaves the ring immediately"
    );
    let r = c
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    assert_eq!(
        counter(&c.stats().unwrap(), "peer_forward_failures"),
        0,
        "nothing was forwarded at a dead member"
    );

    // JOIN admits it straight back; the ack teaches the joiner the
    // admitter's member list.
    let members = c.join(&addrs[1]).expect("JOIN re-admits");
    assert!(members.contains(&addrs[0]) && members.contains(&addrs[1]));
    assert!(mesh0.ring().contains(&addrs[1]), "back on the ring");
}

/// A configured member that never starts is exactly a crashed one: the
/// failure detector walks it Alive → Suspect → Dead on real clocks, the
/// transitions are counted, its state is visible in METRICS, and its key
/// range is served by the survivors without a single error line.
#[test]
fn silent_member_goes_suspect_then_dead_and_is_routed_around() {
    let addrs = reserve_addrs(3);
    // Only start nodes 0 and 1; addrs[2] stays a reserved, closed port.
    let peers0 = vec![addrs[1].clone(), addrs[2].clone()];
    let peers1 = vec![addrs[0].clone(), addrs[2].clone()];
    let h0 = start_member(&addrs[0], peers0, 1);
    let _h1 = start_member(&addrs[1], peers1, 1);

    use se_service::membership::PeerState;
    let mesh0 = h0.engine().mesh().unwrap();
    wait_for(10, "the silent member to be suspected", || {
        mesh0.members().state(&addrs[2]) == Some(PeerState::Suspect)
            || mesh0.members().state(&addrs[2]) == Some(PeerState::Dead)
    });
    wait_for(10, "the silent member to be declared dead", || {
        mesh0.members().state(&addrs[2]) == Some(PeerState::Dead)
    });
    // The live peer stayed alive through the same detector.
    assert_eq!(mesh0.members().state(&addrs[1]), Some(PeerState::Alive));

    // Its range is adopted: a key the dead member owns on the natural
    // ring is answered locally, with no forward attempted at it.
    let g = graph_owned_by(&h0, &addrs[2], se_order::Algorithm::Rcm);
    let mut c = Client::connect(h0.local_addr()).unwrap();
    let r = c
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .expect("a dead member's range must not error");
    assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());

    let s = c.stats().unwrap();
    assert!(
        transition_total(&s) >= 2,
        "alive->suspect and suspect->dead were counted"
    );
    let text = c.metrics().unwrap();
    assert!(
        text.contains(&format!(
            "se_peer_state{{peer=\"{}\",state=\"dead\"}} 2",
            addrs[2]
        )),
        "METRICS names the dead peer"
    );
    assert!(text.contains("se_peer_transitions_total{from=\"alive\",to=\"suspect\"}"));
    assert!(text.contains("se_hints_queued"));
}

/// The full acceptance loop against a genuine crash: SIGKILL a member
/// (run as a child `spectral-orderd` process, so there is no LEAVE and
/// no drain), watch the survivors walk it through the suspicion windows
/// and park a replicated write as a hint, then restart it and verify it
/// JOINs, has the hint log replayed to it, warms its range, and serves a
/// key it owned pre-kill as a local cache hit.
#[test]
fn sigkilled_member_rejoins_replays_hints_and_serves_its_old_range_warm() {
    let addrs = reserve_addrs(3);
    // Nodes 0 and 1 in-process (their internals are inspectable); the
    // victim is a real child process we can SIGKILL mid-life.
    let peers0 = vec![addrs[1].clone(), addrs[2].clone()];
    let peers1 = vec![addrs[0].clone(), addrs[2].clone()];
    let handles = [
        start_member(&addrs[0], peers0, 2),
        start_member(&addrs[1], peers1, 2),
    ];
    let spawn_victim = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_spectral-orderd"))
            .args([
                "--addr",
                &addrs[2],
                "--peers",
                &format!("{},{}", addrs[0], addrs[1]),
                "--replicas",
                "2",
                "--peer-heartbeat-ms",
                "100",
                "--peer-suspect-after-ms",
                "400",
                "--peer-dead-after-ms",
                "900",
                "--antientropy-every",
                "4",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn the victim daemon")
    };
    let mut victim = spawn_victim();
    let victim_addr: std::net::SocketAddr = addrs[2].parse().unwrap();
    wait_for(15, "the victim daemon to serve", || {
        Client::connect(victim_addr).is_ok_and(|mut c| c.ping("probe").is_ok())
    });

    // A key the victim owns, computed on it pre-kill: it lands in the
    // victim's cache and replicates to its ring successor.
    let g_pre = graph_owned_by(&handles[0], &addrs[2], se_order::Algorithm::Rcm);
    let pre = Client::connect(victim_addr)
        .unwrap()
        .order(chaco_request(&g_pre, se_order::Algorithm::Rcm))
        .expect("healthy pre-kill order");

    // SIGKILL: no LEAVE, no drain — the survivors only see silence.
    victim.kill().expect("SIGKILL the victim");
    victim.wait().expect("reap the victim");

    use se_service::membership::PeerState;
    let mesh0 = handles[0].engine().mesh().unwrap();
    wait_for(10, "survivors to mark the killed member dead", || {
        mesh0.members().state(&addrs[2]) == Some(PeerState::Dead)
    });
    // A crashed (unlike a departed) member stays on the ring: it is
    // expected back, so writes toward it park as hints.
    assert!(mesh0.ring().contains(&addrs[2]));

    // A write whose natural replica set includes the dead member parks a
    // hint instead of being dropped: order a *different* key the victim
    // owns, on a survivor that now adopts its range.
    // Only the *live owner* replicates (a node that merely computed as a
    // live replica does not spray copies), so probe for a key the dead
    // node owns whose next natural successor — the live owner while it
    // is down — is node 0, where the order will be sent.
    let g_down = {
        let ring = mesh0.ring();
        let mut found = None;
        for w in 8..400 {
            let g = meshgen::grid2d(w, 9);
            let key = se_service::cache::pattern_key(&g, se_order::Algorithm::Rcm, false);
            let natural = ring.replicas(key, 2);
            if natural.first() == Some(&addrs[2].as_str())
                && natural.get(1) == Some(&addrs[0].as_str())
            {
                found = Some(g);
                break;
            }
        }
        found.expect("a probe graph owned by the dead node with node 0 next")
    };
    let mut survivor = Client::connect(handles[0].local_addr()).unwrap();
    let down = survivor
        .order(chaco_request(&g_down, se_order::Algorithm::Rcm))
        .expect("the dead member's range is served by survivors");
    assert_valid_perm(down.perm.as_ref().unwrap().order(), g_down.n());
    // The replica push toward the dead owner parked as a hint on
    // whichever live node computed it.
    wait_for(10, "a hint to park for the dead member", || {
        handles
            .iter()
            .any(|h| h.engine().mesh().unwrap().hints_queued() > 0)
    });

    // Restart node 2 on the same address: it announces JOIN, pulls its
    // range warm, and the survivors replay the parked hints to it.
    let peers2 = vec![addrs[0].clone(), addrs[1].clone()];
    let h2 = start_member(&addrs[2], peers2, 2);
    wait_for(10, "survivors to re-admit the restarted member", || {
        mesh0.members().state(&addrs[2]) == Some(PeerState::Alive)
    });
    wait_for(10, "the hint log to drain", || {
        handles
            .iter()
            .all(|h| h.engine().mesh().unwrap().hints_queued() == 0)
    });
    let replayed: u64 = handles
        .iter()
        .map(|h| {
            counter(
                &Client::connect(h.local_addr()).unwrap().stats().unwrap(),
                "hints_replayed",
            )
        })
        .sum();
    assert!(replayed >= 1, "the parked hint was replayed, not dropped");

    // Keys it owned pre-kill are local cache hits on the rejoined node:
    // the hinted entry and (via warm-up or anti-entropy) the pre-kill
    // entry too.
    let mut rejoined = Client::connect(h2.local_addr()).unwrap();
    wait_for(10, "the hinted key to be warm on the rejoined node", || {
        rejoined
            .order(chaco_request(&g_down, se_order::Algorithm::Rcm))
            .is_ok_and(|r| r.cache_hit)
    });
    let again = rejoined
        .order(chaco_request(&g_down, se_order::Algorithm::Rcm))
        .unwrap();
    assert_eq!(
        again.perm.as_ref().unwrap().order(),
        down.perm.as_ref().unwrap().order(),
        "the replayed entry is bit-identical to the survivor's answer"
    );
    wait_for(
        15,
        "the pre-kill key to be warm again on the rejoined node",
        || {
            rejoined
                .order(chaco_request(&g_pre, se_order::Algorithm::Rcm))
                .is_ok_and(|r| {
                    r.cache_hit
                        && r.perm.as_ref().unwrap().order() == pre.perm.as_ref().unwrap().order()
                })
        },
    );
    Client::connect(h2.local_addr()).unwrap().shutdown().ok();
    h2.join();
}

/// Peer flapping: kill and restart the owner of a hot key in a loop
/// while a client hammers the survivor. Every response must be a valid,
/// bit-identical permutation — never a fatal error — and the survivor's
/// transition counter only grows.
#[test]
fn flapping_owner_under_load_stays_error_free_and_bit_identical() {
    let addrs = reserve_addrs(2);
    let mut handles = start_mesh(&addrs, 1);
    let mut flapper = handles.pop().unwrap();
    let h0 = handles.pop().unwrap();

    // Reference permutations from an isolated single node.
    let solo = serve(Config::default()).unwrap();
    let graphs: Vec<SymmetricPattern> = vec![
        graph_owned_by(&h0, &addrs[0], se_order::Algorithm::Rcm),
        graph_owned_by(&h0, &addrs[1], se_order::Algorithm::Rcm),
        meshgen::grid2d(13, 11),
    ];
    let mut solo_client = Client::connect(solo.local_addr()).unwrap();
    let reference: Vec<Vec<usize>> = graphs
        .iter()
        .map(|g| {
            solo_client
                .order(chaco_request(g, se_order::Algorithm::Rcm))
                .unwrap()
                .perm
                .unwrap()
                .order()
                .to_vec()
        })
        .collect();
    solo_client.shutdown().unwrap();
    solo.join();

    // Client load against the stable node, on its own thread.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = {
        let stop = std::sync::Arc::clone(&stop);
        let addr = h0.local_addr();
        let graphs = graphs.clone();
        std::thread::spawn(move || -> Result<u64, String> {
            let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
            let mut served = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                for (i, g) in graphs.iter().enumerate() {
                    let r = c
                        .order(chaco_request(g, se_order::Algorithm::Rcm))
                        .map_err(|e| format!("client-visible failure on graph {i}: {e}"))?;
                    let perm = r.perm.as_ref().ok_or("missing perm")?.order();
                    let mut seen = vec![false; g.n()];
                    for &v in perm {
                        if v >= g.n() || seen[v] {
                            return Err(format!("graph {i}: not a permutation"));
                        }
                        seen[v] = true;
                    }
                    served += 1;
                }
            }
            Ok(served)
        })
    };

    // Flap the owner: graceful kill, wait for the survivor to notice,
    // restart, wait for readmission — twice.
    use se_service::membership::PeerState;
    let mesh0 = h0.engine().mesh().unwrap();
    let mut transition_marks = vec![transition_total(
        &Client::connect(h0.local_addr()).unwrap().stats().unwrap(),
    )];
    for _ in 0..2 {
        Client::connect(flapper.local_addr())
            .unwrap()
            .shutdown()
            .expect("flapper drains cleanly");
        flapper.join();
        wait_for(10, "the survivor to mark the flapper dead", || {
            mesh0.members().state(&addrs[1]) == Some(PeerState::Dead)
        });
        flapper = start_member(&addrs[1], vec![addrs[0].clone()], 1);
        wait_for(10, "the survivor to re-admit the flapper", || {
            mesh0.members().state(&addrs[1]) == Some(PeerState::Alive)
        });
        transition_marks.push(transition_total(
            &Client::connect(h0.local_addr()).unwrap().stats().unwrap(),
        ));
    }

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let served = load
        .join()
        .expect("load thread must not panic")
        .expect("zero client-visible fatal errors under flapping");
    assert!(served >= 3, "the load loop made progress");

    // The transition counter is monotone and actually moved: each flap
    // records at least the dead + alive edges.
    assert!(
        transition_marks.windows(2).all(|w| w[1] >= w[0]),
        "se_peer_transitions_total never decreases"
    );
    assert!(
        *transition_marks.last().unwrap() >= transition_marks[0] + 4,
        "both flaps were observed by the failure detector"
    );

    // Bit-identity with the single-node reference, after the dust
    // settles.
    let mut c = Client::connect(h0.local_addr()).unwrap();
    for (g, want) in graphs.iter().zip(&reference) {
        let got = c.order(chaco_request(g, se_order::Algorithm::Rcm)).unwrap();
        assert_eq!(
            got.perm.as_ref().unwrap().order(),
            want.as_slice(),
            "mesh answers match the single-node reference bit for bit"
        );
    }
}
