//! Reactor-transport acceptance tests: protocol v2 pipelining on the
//! poll-based event loop.
//!
//! Covers the properties the thread-per-connection transport never had to
//! provide: out-of-order completion of id-tagged responses on one
//! connection, unsolicited PROGRESS frames interleaved with pending
//! ORDERs, CANCEL of a pipelined in-flight id on the same connection,
//! many idle keep-alive connections served by a bounded thread count, and
//! bit-identical responses against the legacy transport.

use se_service::proto::{
    decode_tagged_response, encode_request, MatrixFormat, MatrixSource, OrderRequest,
    OrderResponse, ProgressFrame, Request, Response,
};
use se_service::{serve, Client, Config, FrameMode};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::Ordering;

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm, id: Option<u64>) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id,
        progress: false,
        hop: false,
    }
}

fn start(cfg: Config) -> (se_service::ServerHandle, std::net::SocketAddr) {
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.local_addr();
    (handle, addr)
}

/// A raw protocol-v2 connection: line-level access so tests can observe
/// the actual arrival order of responses (the [`Client`] re-orders).
struct RawV2 {
    writer: std::net::TcpStream,
    reader: BufReader<std::net::TcpStream>,
    line: String,
}

impl RawV2 {
    fn connect(addr: std::net::SocketAddr) -> RawV2 {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut conn = RawV2 {
            writer,
            reader: BufReader::new(stream),
            line: String::new(),
        };
        conn.send(&Request::Hello {
            frames: FrameMode::Ndjson,
            proto: 2,
        });
        match conn.recv() {
            (None, Response::Hello { proto: 2, .. }) => conn,
            other => panic!("expected a v2 HELLO ack, got {other:?}"),
        }
    }

    fn send(&mut self, req: &Request) {
        writeln!(self.writer, "{}", encode_request(req)).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> (Option<u64>, Response) {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        decode_tagged_response(self.line.trim()).unwrap()
    }

    /// Receives until a non-PROGRESS response arrives, counting the
    /// progress frames skipped on the way.
    fn recv_skipping_progress(&mut self, progress_seen: &mut usize) -> (Option<u64>, Response) {
        loop {
            match self.recv() {
                (_, Response::Progress(_)) => *progress_seen += 1,
                other => return other,
            }
        }
    }
}

/// A fast cache hit pipelined behind a slow uncached solve on the same
/// connection must complete first — the id tag, not arrival order,
/// correlates responses.
#[test]
fn pipelined_cache_hit_overtakes_slow_order() {
    let (handle, addr) = start(Config {
        workers: 2,
        ..Config::default()
    });
    let fast = meshgen::grid2d(10, 10);
    // Big enough that the spectral solve takes hundreds of ms even on a
    // fast machine — the cache hit's overtaking window must be generous.
    let slow = meshgen::annulus_tri(150, 400, 0xACE); // n = 60k

    // Warm the cache so the fast request is a pure lookup.
    let warm = Client::connect(addr)
        .unwrap()
        .order(chaco_request(&fast, se_order::Algorithm::Rcm, None))
        .unwrap();
    assert!(!warm.cache_hit);

    let mut conn = RawV2::connect(addr);
    conn.send(&Request::Order(chaco_request(
        &slow,
        se_order::Algorithm::Spectral,
        Some(1),
    )));
    conn.send(&Request::Order(chaco_request(
        &fast,
        se_order::Algorithm::Rcm,
        Some(2),
    )));

    let (first_id, first) = conn.recv();
    let (second_id, second) = conn.recv();
    assert_eq!(first_id, Some(2), "the cache hit must overtake: {first:?}");
    assert_eq!(second_id, Some(1));
    match (&first, &second) {
        (Response::Order(hit), Response::Order(solved)) => {
            assert!(hit.cache_hit);
            assert_eq!(hit.perm, warm.perm);
            assert!(!solved.cache_hit);
            assert_eq!(solved.n, slow.n());
        }
        other => panic!("expected two ORDER responses, got {other:?}"),
    }

    let mut control = Client::connect(addr).unwrap();
    control.shutdown().unwrap();
    handle.join();
}

/// An ORDER opting into progress streams PROGRESS frames while another
/// pipelined ORDER completes on the same connection; the frames carry the
/// opted-in id and a monotone percent, and the server counts them.
#[test]
fn progress_frames_interleave_with_pipelined_orders() {
    let (handle, addr) = start(Config {
        workers: 2,
        ..Config::default()
    });
    let slow = meshgen::annulus_tri(16, 75, 0xBEAD);
    let fast = meshgen::grid2d(9, 9);

    let mut client = Client::connect(addr).unwrap();
    let reqs = vec![
        chaco_request(&slow, se_order::Algorithm::Spectral, Some(10)),
        chaco_request(&fast, se_order::Algorithm::Rcm, Some(11)),
    ];
    let mut frames: Vec<ProgressFrame> = Vec::new();
    let mut on_progress = |p: &ProgressFrame| frames.push(p.clone());
    let results = client.order_many(reqs, 2, Some(&mut on_progress)).unwrap();

    assert_eq!(results.len(), 2);
    let slow_resp = results[0].as_ref().expect("slow order succeeds");
    let fast_resp = results[1].as_ref().expect("fast order succeeds");
    assert_eq!(slow_resp.n, slow.n());
    assert_eq!(fast_resp.n, fast.n());

    assert!(!frames.is_empty(), "an uncached spectral solve must report");
    let mut last = 0.0_f64;
    for f in &frames {
        assert_eq!(f.id, 10, "only the opted-in order may stream progress");
        assert!(!f.stage.is_empty());
        assert!((0.0..=100.0).contains(&f.percent), "got {}", f.percent);
        assert!(f.percent >= last, "progress must be monotone");
        last = f.percent;
    }
    assert!(
        handle.metrics().progress_frames.load(Ordering::Relaxed) >= frames.len() as u64,
        "se_progress_frames_total must count every frame"
    );
    let text = client.metrics().unwrap();
    assert!(text.contains("se_progress_frames_total"), "missing counter");

    client.shutdown().unwrap();
    handle.join();
}

/// CANCEL of a pipelined in-flight id on the SAME connection: the ack
/// releases immediately (out of order, past the still-pending ORDERs) and
/// the cancelled queued order errors instead of computing.
#[test]
fn cancel_of_pipelined_inflight_id_on_same_connection() {
    let (handle, addr) = start(Config {
        workers: 1, // the blocker pins the only worker, so id 7 stays queued
        ..Config::default()
    });
    // The blocker must pin the worker until the CANCEL line is read and
    // acked, so it has to be genuinely slow, not merely uncached.
    let blocker = meshgen::annulus_tri(100, 300, 0xCAB); // n = 30k
    let victim = meshgen::grid2d(20, 20);

    let mut conn = RawV2::connect(addr);
    conn.send(&Request::Order(chaco_request(
        &blocker,
        se_order::Algorithm::Spectral,
        Some(6),
    )));
    conn.send(&Request::Order(chaco_request(
        &victim,
        se_order::Algorithm::Rcm,
        Some(7),
    )));
    conn.send(&Request::Cancel { id: 7 });

    // The inline CANCEL ack must not wait behind the two pending ORDERs.
    let mut progress_seen = 0;
    match conn.recv_skipping_progress(&mut progress_seen) {
        (None, Response::CancelOk { pending }) => {
            assert!(pending, "id 7 was queued, so the cancel must land")
        }
        other => panic!("expected the CANCEL ack first, got {other:?}"),
    }

    let mut by_id = std::collections::HashMap::new();
    for _ in 0..2 {
        let (id, resp) = conn.recv_skipping_progress(&mut progress_seen);
        by_id.insert(id.expect("ORDER responses are tagged"), resp);
    }
    match by_id.remove(&6) {
        Some(Response::Order(r)) => assert_eq!(r.n, blocker.n()),
        other => panic!("expected id 6 to complete, got {other:?}"),
    }
    match by_id.remove(&7) {
        Some(Response::Error(e)) => {
            assert!(e.error.contains("cancelled"), "got: {}", e.error)
        }
        other => panic!("expected id 7 cancelled, got {other:?}"),
    }

    let mut control = Client::connect(addr).unwrap();
    control.shutdown().unwrap();
    handle.join();
}

/// 1024 idle keep-alive connections are served without 1024 threads: the
/// reactor multiplexes them onto its event loops, and the
/// `se_open_connections` gauge tracks them.
#[test]
fn thousand_idle_connections_bounded_threads() {
    let (handle, addr) = start(Config {
        workers: 1,
        max_conns: 1100,
        ..Config::default()
    });

    const IDLE: usize = 1024;
    let mut conns = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => conns.push(s),
            Err(e) => panic!("connect {i} failed: {e}"),
        }
    }

    // Accepts are asynchronous; wait for the gauge to observe all of them.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let open = handle.metrics().open_connections.load(Ordering::Relaxed);
        if open >= IDLE as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {open}/{IDLE} connections accepted in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // One more connection still gets service while the 1024 sit idle.
    let mut client = Client::connect(addr).unwrap();
    let g = meshgen::grid2d(8, 8);
    let r = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm, None))
        .unwrap();
    assert_eq!(r.n, g.n());

    // The whole process — reactor loops, workers, test harness — must be
    // nowhere near thread-per-connection territory.
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    let threads: usize = status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status");
    assert!(
        threads < 128,
        "{IDLE} idle connections must not cost {threads} threads"
    );

    drop(conns);
    client.shutdown().unwrap();
    handle.join();
}

/// Everything except the wall-clock measurement, for bit-identity checks
/// across transports.
fn identity_view(r: &OrderResponse) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &r.alg,
        r.n,
        r.nnz,
        &r.stats,
        &r.perm,
        r.cache_hit,
        r.compression_ratio,
        &r.degraded,
    )
}

/// The reactor transport answers protocol-v1 clients with responses
/// bit-identical (modulo timing) to the legacy thread-per-connection
/// transport, in both frame modes.
#[test]
fn reactor_matches_legacy_transport_bit_for_bit() {
    let (legacy, legacy_addr) = start(Config {
        legacy_transport: true,
        ..Config::default()
    });
    let (reactor, reactor_addr) = start(Config::default());

    let graphs = [meshgen::grid2d(11, 7), meshgen::annulus_tri(8, 30, 0xF00)];
    for mode in [FrameMode::Ndjson, FrameMode::Binary] {
        let mut lc = Client::connect(legacy_addr).unwrap();
        let mut rc = Client::connect(reactor_addr).unwrap();
        if mode == FrameMode::Binary {
            lc.hello(mode).unwrap();
            rc.hello(mode).unwrap();
        }
        for g in &graphs {
            for alg in [se_order::Algorithm::Spectral, se_order::Algorithm::Rcm] {
                // Twice per server: a computed response and a cache hit.
                for _ in 0..2 {
                    let a = lc.order(chaco_request(g, alg, None)).unwrap();
                    let b = rc.order(chaco_request(g, alg, None)).unwrap();
                    assert_eq!(identity_view(&a), identity_view(&b), "{alg:?} {mode:?}");
                }
            }
        }
    }

    Client::connect(legacy_addr).unwrap().shutdown().unwrap();
    Client::connect(reactor_addr).unwrap().shutdown().unwrap();
    legacy.join();
    reactor.join();
}
