//! End-to-end tests for the observability surface: traced ORDERs return
//! the span tree over the wire and bypass the cache without poisoning it,
//! tracing never perturbs results, METRICS exposes a parseable
//! Prometheus-style text exposition, CANCEL suppresses queued work, and
//! the spill-directory budget caps disk use across restarts.

use se_service::json::{self, Json};
use se_service::proto::{MatrixFormat, MatrixSource, OrderRequest};
use se_service::{serve, Client, ClientError, Config};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    }
}

fn span_names(node: &Json, out: &mut Vec<String>) {
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        out.push(name.to_string());
    }
    if let Some(children) = node.get("children").and_then(Json::as_arr) {
        for c in children {
            span_names(c, out);
        }
    }
}

/// `"trace":true` returns the span tree, recomputes even on a warm cache,
/// and leaves the cache serving untraced repeats; tracing never changes
/// the permutation.
#[test]
fn traced_orders_return_the_span_tree_and_bypass_the_cache() {
    let handle = serve(Config::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(13, 11);

    let first = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    assert!(!first.cache_hit);
    assert!(first.trace.is_none(), "untraced orders carry no trace");

    let hit = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    assert!(hit.cache_hit);
    assert!(hit.trace.is_none());

    let mut req = chaco_request(&g, se_order::Algorithm::Spectral);
    req.trace = true;
    let traced = client.order(req).unwrap();
    assert!(
        !traced.cache_hit,
        "a traced request must describe an actual computation"
    );
    let tree = json::parse(traced.trace.as_deref().expect("a trace subtree")).expect("valid JSON");
    assert_eq!(tree.get("name").and_then(Json::as_str), Some("order"));
    assert!(tree.get("wall_us").and_then(Json::as_u64).is_some());
    let mut names = Vec::new();
    span_names(&tree, &mut names);
    for stage in [
        "order",
        "spectral",
        "fiedler",
        "coarsen",
        "sort",
        "envelope_eval",
    ] {
        assert!(
            names.iter().any(|n| n == stage),
            "missing {stage} in {names:?}"
        );
    }
    assert_eq!(
        traced.perm, first.perm,
        "tracing must not perturb the permutation"
    );

    let again = client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    assert!(again.cache_hit, "the traced run must not evict the entry");
    assert_eq!(again.perm, first.perm);

    client.shutdown().unwrap();
    handle.join();
}

/// Hand-rolled Prometheus text-format checks: every sample line parses,
/// every family announces HELP and TYPE first, the per-stage histograms
/// exist, buckets are cumulative and agree with `_count`.
#[test]
fn metrics_exposition_is_wellformed() {
    let handle = serve(Config::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let g = meshgen::grid2d(12, 10);
    client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();
    client
        .order(chaco_request(&g, se_order::Algorithm::Spectral))
        .unwrap();

    let text = client.metrics().unwrap();
    let mut announced: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            let kind = words.next().unwrap();
            let family = words.next().expect("a family name");
            assert!(matches!(kind, "HELP" | "TYPE"), "bad comment: {line}");
            assert!(words.next().is_some(), "no text after the family: {line}");
            if kind == "TYPE" {
                announced.push(family);
            }
            continue;
        }
        // Sample: `name value` or `name{labels} value`, value a number.
        let (series, value) = line.rsplit_once(' ').expect("a sample line");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in: {line}"
        );
        assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            announced.contains(&family),
            "sample before its TYPE line: {line}"
        );
    }

    for must in [
        "\nse_requests_total ",
        "\nse_orders_total 2",
        "\nse_cache_hits_total 1",
        "\nse_cache_misses_total 1",
        "\nse_cancelled_total 0",
        "\nse_queue_depth ",
        "se_cache_shard_entries{shard=\"0\"}",
        "se_order_latency_microseconds_bucket{alg=\"SPECTRAL\",le=\"+Inf\"} 2",
        "se_order_latency_microseconds_count{alg=\"SPECTRAL\"} 2",
        "se_stage_latency_microseconds_bucket{stage=\"fiedler\"",
        "se_stage_latency_microseconds_bucket{stage=\"coarsen\"",
    ] {
        assert!(text.contains(must), "missing `{}` in:\n{text}", must.trim());
    }

    // Buckets are cumulative: counts never decrease as `le` widens.
    let fiedler: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("se_stage_latency_microseconds_bucket{stage=\"fiedler\""))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!fiedler.is_empty());
    assert!(
        fiedler.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative: {fiedler:?}"
    );
    assert_eq!(*fiedler.last().unwrap(), 1.0, "+Inf bucket equals count");

    client.shutdown().unwrap();
    handle.join();
}

/// CANCEL from a second connection: the queued request never runs (its
/// client gets the fatal `request cancelled` error), the busy worker's
/// request completes untouched, and the cancelled counter ticks.
#[test]
fn cancel_suppresses_a_queued_order() {
    let handle = serve(Config {
        workers: 1,
        ..Config::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    // Connection A occupies the only worker with a slow spectral order —
    // big enough to still be running while the cancel below goes through,
    // even on a fast machine. STATS polling (not fixed sleeps) confirms
    // each stage actually happened before moving on, so a loaded or slow
    // host can't race B's job past the cancel.
    // Both requests carry explicit generous timeouts: the queued job's
    // "request cancelled" answer is only delivered when the worker
    // dequeues it — i.e. after the slow solve finishes — and on a slow
    // debug host that solve can outlast the 30 s default timeout, which
    // would turn both answers into retriable "request timed out" lines.
    // This test is about cancellation semantics, not deadlines.
    let slow = meshgen::grid2d(400, 400);
    let mut slow_req = chaco_request(&slow, se_order::Algorithm::Spectral);
    slow_req.timeout_ms = Some(300_000);
    let a = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.order(slow_req)
    });
    let mut control = Client::connect(addr).unwrap();
    let wait_for = |control: &mut Client, key: &str, want: u64| {
        let t0 = std::time::Instant::now();
        loop {
            let stats = control.stats().unwrap();
            if stats.get(key).and_then(Json::as_u64) == Some(want) {
                return;
            }
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(20),
                "timed out waiting for {key} == {want}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    };
    wait_for(&mut control, "active_jobs", 1);

    // Connection B queues a small order with a client id.
    let mut queued = chaco_request(&meshgen::grid2d(6, 5), se_order::Algorithm::Rcm);
    queued.timeout_ms = Some(300_000);
    queued.id = Some(9);
    let b = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.order(queued)
    });
    wait_for(&mut control, "queue_depth", 1);

    // Connection C cancels it while it waits behind the slow job.
    assert!(control.cancel(9).unwrap(), "id 9 must still be pending");
    assert!(!control.cancel(999).unwrap(), "unknown ids are not pending");

    match b.join().unwrap() {
        Err(ClientError::Server(e)) => {
            assert!(!e.retriable);
            assert!(e.error.contains("cancelled"), "got: {}", e.error);
        }
        other => panic!("expected the cancelled error, got {other:?}"),
    }
    let slow_result = a.join().unwrap().expect("the running order completes");
    assert!(!slow_result.cache_hit);

    let stats = control.stats().unwrap();
    assert_eq!(stats.get("cancelled").and_then(Json::as_u64), Some(1));

    control.shutdown().unwrap();
    handle.join();
}

/// `cache_dir_budget` bounds the spill directory: oldest entries are
/// deleted first, the bound holds across a restart, and the surviving
/// newest entry still serves hits.
#[test]
fn spill_dir_budget_caps_disk_use_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("se-dirbudget-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Four same-size meshes (n = 108) so every spill file is comparable.
    let meshes = [
        meshgen::grid2d(12, 9),
        meshgen::grid2d(18, 6),
        meshgen::grid2d(27, 4),
        meshgen::grid2d(36, 3),
    ];
    let dir_bytes = |dir: &std::path::Path| -> u64 {
        std::fs::read_dir(dir)
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                    .sum()
            })
            .unwrap_or(0)
    };

    // Calibrate: one unbudgeted insert tells us a spill entry's size.
    let handle = serve(Config {
        cache_dir: Some(dir.clone()),
        ..Config::default()
    })
    .expect("bind");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client
        .order(chaco_request(&meshes[0], se_order::Algorithm::Rcm))
        .unwrap();
    client.shutdown().unwrap();
    handle.join();
    let entry_size = dir_bytes(&dir);
    assert!(entry_size > 0, "the insert must spill to disk");
    let _ = std::fs::remove_dir_all(&dir);

    // Room for two entries (plus slack), then insert four.
    let budget = entry_size * 5 / 2;
    let cfg = || Config {
        cache_dir: Some(dir.clone()),
        cache_dir_budget: Some(budget),
        ..Config::default()
    };
    let handle = serve(cfg()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for g in &meshes {
        let r = client
            .order(chaco_request(g, se_order::Algorithm::Rcm))
            .unwrap();
        assert!(!r.cache_hit);
    }
    client.shutdown().unwrap();
    handle.join();
    assert!(
        dir_bytes(&dir) <= budget,
        "dir holds {} bytes over the {budget}-byte budget",
        dir_bytes(&dir)
    );
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert!(files < meshes.len(), "oldest spills must have been deleted");
    assert!(files >= 1, "the newest spill must survive");

    // Restart over the same directory: the budget still holds, the newest
    // entry hits, the oldest was deleted and misses.
    let handle = serve(cfg()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let newest = client
        .order(chaco_request(&meshes[3], se_order::Algorithm::Rcm))
        .unwrap();
    assert!(
        newest.cache_hit,
        "the newest entry must survive the restart"
    );
    let oldest = client
        .order(chaco_request(&meshes[0], se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!oldest.cache_hit, "the oldest entry must have been deleted");
    assert!(
        dir_bytes(&dir) <= budget,
        "the budget holds after re-inserts"
    );
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
