//! Loopback acceptance tests: a real `spectral-orderd` server on an
//! ephemeral port, driven through the blocking [`se_service::Client`].
//!
//! This is the ISSUE's acceptance demo in executable form: same matrix
//! twice → second response is a cache hit; a 16-request batch all arrives;
//! STATS reports request/hit/queue-depth counters and per-algorithm
//! latency; queue overload yields a retriable error; SHUTDOWN drains
//! in-flight work before acking.

use se_service::json::Json;
use se_service::proto::{MatrixFormat, MatrixSource, OrderRequest, Request, Response};
use se_service::{serve, Client, Config};
use sparsemat::io::write_chaco_string;
use sparsemat::pattern::SymmetricPattern;
use std::io::{BufRead, BufReader, Write};

fn chaco_request(g: &SymmetricPattern, alg: se_order::Algorithm) -> OrderRequest {
    OrderRequest {
        alg,
        source: MatrixSource::Inline {
            format: MatrixFormat::Chaco,
            payload: write_chaco_string(g),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    }
}

fn start(cfg: Config) -> (se_service::ServerHandle, std::net::SocketAddr) {
    let handle = serve(cfg).expect("bind ephemeral port");
    let addr = handle.local_addr();
    (handle, addr)
}

fn assert_valid_perm(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n);
    let mut seen = vec![false; n];
    for &v in perm {
        assert!(v < n && !seen[v], "not a permutation: {perm:?}");
        seen[v] = true;
    }
}

#[test]
fn order_roundtrip_with_cache_hit_and_stats() {
    let (handle, addr) = start(Config::default());
    let mut client = Client::connect(addr).unwrap();
    let g = meshgen::grid2d(12, 12);

    let first = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert_eq!(first.alg, "RCM");
    assert_eq!(first.n, g.n());
    assert_eq!(first.nnz, g.nnz_lower_with_diagonal());
    assert!(!first.cache_hit, "first request must compute");
    assert_valid_perm(first.perm.as_ref().unwrap().order(), g.n());

    // Same pattern + algorithm again: served from the cache, bit-identical.
    let second = client
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(
        second.cache_hit,
        "second identical request must hit the cache"
    );
    assert_eq!(second.perm, first.perm);
    assert_eq!(second.stats, first.stats);

    // A different algorithm on the same pattern is a different cache key.
    let third = client
        .order(chaco_request(&g, se_order::Algorithm::Sloan))
        .unwrap();
    assert!(!third.cache_hit);

    let stats = client.stats().unwrap();
    let num = |k: &str| {
        stats
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats.{k}"))
    };
    assert_eq!(num("cache_hits"), 1);
    assert_eq!(num("cache_misses"), 2);
    assert_eq!(num("orders"), 3);
    assert!(num("requests") >= 4, "three ORDERs plus this STATS");
    assert_eq!(num("queue_rejections"), 0);
    let _ = num("queue_depth");
    let _ = num("active_jobs");
    assert_eq!(num("cached_orderings"), 2);
    let by_alg = stats.get("latency_us_by_algorithm").expect("latency table");
    assert_eq!(
        by_alg
            .get("RCM")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        by_alg
            .get("SLOAN")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(1)
    );

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn sixteen_request_batch_all_arrive_in_order() {
    let (handle, addr) = start(Config::default());
    let mut client = Client::connect(addr).unwrap();

    // 16 distinct matrices so every slot is a real computation.
    let graphs: Vec<SymmetricPattern> = (0..16).map(|i| meshgen::grid2d(4 + i, 5)).collect();
    let reqs: Vec<OrderRequest> = graphs
        .iter()
        .map(|g| chaco_request(g, se_order::Algorithm::Rcm))
        .collect();
    let responses = client.order_batch(reqs).unwrap();

    assert_eq!(responses.len(), 16, "every batch slot must arrive");
    for (i, (resp, g)) in responses.iter().zip(&graphs).enumerate() {
        let r = resp
            .as_ref()
            .unwrap_or_else(|e| panic!("slot {i} failed: {}", e.error));
        assert_eq!(r.n, g.n(), "slot {i} out of order");
        assert_valid_perm(r.perm.as_ref().unwrap().order(), g.n());
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("orders").and_then(Json::as_u64), Some(16));
    assert_eq!(stats.get("batches").and_then(Json::as_u64), Some(1));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn concurrent_clients_share_the_cache() {
    let (handle, addr) = start(Config::default());
    let g = meshgen::annulus_tri(8, 40, 0xC0FFEE);
    let payload = write_chaco_string(&g);

    // Warm the cache once so every concurrent request below can hit.
    let warm = Client::connect(addr)
        .unwrap()
        .order(chaco_request(&g, se_order::Algorithm::Rcm))
        .unwrap();
    assert!(!warm.cache_hit);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let payload = payload.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let req = OrderRequest {
                    alg: se_order::Algorithm::Rcm,
                    source: MatrixSource::Inline {
                        format: MatrixFormat::Chaco,
                        payload,
                    },
                    timeout_ms: None,
                    include_perm: true,
                    threads: None,
                    compressed: false,
                    trace: false,
                    id: None,
                    progress: false,
                    hop: false,
                };
                client.order(req).unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // All eight agree with the warm-up ordering and each other.
    for r in &responses {
        assert!(
            r.cache_hit,
            "warm cache must serve every concurrent request"
        );
        assert_eq!(r.perm, warm.perm);
        assert_eq!(r.stats, warm.stats);
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(8));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn queue_overload_yields_retriable_backpressure_errors() {
    // One worker, queue of one: a batch of four slow orderings can keep at
    // most two (one running + one queued); the rest must be rejected with a
    // retriable error rather than blocking the connection.
    let (handle, addr) = start(Config {
        workers: 1,
        queue_capacity: 1,
        ..Config::default()
    });
    let mut client = Client::connect(addr).unwrap();

    let g = meshgen::annulus_tri(16, 75, 0xBEEF); // n ≈ 1.2k: slow enough
    let reqs: Vec<OrderRequest> = (0..4)
        .map(|_| chaco_request(&g, se_order::Algorithm::Spectral))
        .collect();
    let responses = client.order_batch(reqs).unwrap();

    let ok = responses.iter().filter(|r| r.is_ok()).count();
    let rejected: Vec<_> = responses.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(ok >= 1, "the running job must succeed");
    assert!(!rejected.is_empty(), "queue of 1 cannot absorb 4 slow jobs");
    for e in &rejected {
        assert!(e.retriable, "backpressure must be retriable: {}", e.error);
        assert!(e.error.contains("queue full"), "got: {}", e.error);
    }

    let stats = client.stats().unwrap();
    let rej = stats
        .get("queue_rejections")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(rej as usize, rejected.len());

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn per_request_timeout_is_enforced() {
    let (handle, addr) = start(Config::default());
    let mut client = Client::connect(addr).unwrap();

    let g = meshgen::annulus_tri(16, 75, 0xFEED);
    let mut req = chaco_request(&g, se_order::Algorithm::Spectral);
    req.timeout_ms = Some(1); // a 1.2k-vertex spectral ordering takes longer
    let err = client.order(req).unwrap_err();
    match err {
        se_service::ClientError::Server(e) => {
            assert!(e.retriable);
            assert!(e.error.contains("timed out"), "got: {}", e.error);
        }
        other => panic!("expected a server timeout error, got {other}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("timeouts").and_then(Json::as_u64), Some(1));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let (handle, addr) = start(Config {
        workers: 1,
        queue_capacity: 16,
        ..Config::default()
    });

    // A batch of three moderately slow jobs on one connection...
    let batch_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let g = meshgen::annulus_tri(12, 60, 0xD1CE);
        let reqs: Vec<OrderRequest> = (0..3)
            .map(|_| chaco_request(&g, se_order::Algorithm::Spectral))
            .collect();
        client.order_batch(reqs).unwrap()
    });
    // ...and a SHUTDOWN racing it from another connection. The drain must
    // let the queued jobs finish before the ack.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut control = Client::connect(addr).unwrap();
    let drained = control.shutdown().unwrap();

    let responses = batch_thread.join().unwrap();
    let ok = responses.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 3, "queued work must survive a graceful shutdown");
    assert!(
        drained >= 1,
        "the ack reports how much work the drain finished"
    );

    handle.join();
}

#[test]
fn malformed_lines_get_errors_but_the_connection_survives() {
    let (handle, addr) = start(Config::default());
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    for bad in [
        "this is not json",
        r#"{"cmd":"NOPE"}"#,
        r#"{"cmd":"ORDER","alg":"wat","payload":"x"}"#,
    ] {
        writeln!(writer, "{bad}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let v = se_service::json::parse(line.trim()).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "for {bad}"
        );
    }

    // A bad matrix payload is an error too, but a typed one.
    let req = Request::Order(OrderRequest {
        alg: se_order::Algorithm::Rcm,
        source: MatrixSource::Inline {
            format: MatrixFormat::MatrixMarket,
            payload: "definitely not a matrix".into(),
        },
        timeout_ms: None,
        include_perm: true,
        threads: None,
        compressed: false,
        trace: false,
        id: None,
        progress: false,
        hop: false,
    });
    writeln!(writer, "{}", se_service::proto::encode_request(&req)).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match se_service::proto::decode_response(line.trim()).unwrap() {
        Response::Error(e) => assert!(!e.retriable),
        other => panic!("expected an error response, got {other:?}"),
    }

    // The same connection still serves valid requests afterwards.
    let g = meshgen::grid2d(6, 6);
    writeln!(
        writer,
        "{}",
        se_service::proto::encode_request(&Request::Order(chaco_request(
            &g,
            se_order::Algorithm::Rcm
        )))
    )
    .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match se_service::proto::decode_response(line.trim()).unwrap() {
        Response::Order(r) => assert_eq!(r.n, g.n()),
        other => panic!("expected an order response, got {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join();
}
