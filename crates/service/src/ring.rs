//! Consistent-hash ring mapping cache keys to mesh nodes.
//!
//! The single-process cache already splits its key space with the
//! multiply-shift partition in [`crate::cache`] — perfect balance, but any
//! change in the shard count moves almost every key. A mesh cannot afford
//! that: nodes join and drain while peers keep routing, so the partition
//! must be *stable* — when one of `N` nodes leaves, only the ~`K/N` keys it
//! owned may change owner. The classic fix is a consistent-hash ring:
//! every node is hashed to many points on the `u64` circle (virtual nodes,
//! [`DEFAULT_VNODES`] each, smoothing the load imbalance a single point
//! per node would give), and a key belongs to the first node point at or
//! after it, wrapping at the top.
//!
//! Node names are the exact `host:port` strings from `--peers`; every
//! member must be given the same list (plus itself) so all ring views
//! agree. Hashing is the same FNV-1a as the cache key itself
//! ([`crate::cache::Fnv1a`]), so ownership is a pure function of the
//! name list — no coordination, no state.

use crate::cache::Fnv1a;

/// Virtual-node points per member. 64 keeps the max/mean key-load ratio
/// within a few percent for small meshes while the ring stays tiny
/// (`N × 64` sorted points).
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over named nodes.
///
/// Construction sorts the hashed points once; [`owner`](HashRing::owner)
/// is then a binary search. Equal node lists (in any order) produce equal
/// rings — ownership depends only on the *set* of names.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node index)` sorted by point.
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
    /// Points per member, kept so live add/remove rebuilds identically.
    vnodes: usize,
}

/// Final avalanche step (the splitmix64 finalizer). FNV-1a is a fine
/// content hash, but on short, similar inputs — peer addresses differing
/// in one digit — its raw output clusters, and ring balance is *arc
/// length*: clustered points turn directly into load skew. The finalizer
/// spreads the points evenly without adding any coordination or state.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn vnode_point(name: &str, vnode: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(name.as_bytes());
    h.write_u64(vnode as u64);
    mix(h.finish())
}

impl HashRing {
    /// Builds a ring over `nodes` with `vnodes` points each (clamped to at
    /// least 1). Duplicate names are collapsed; order is irrelevant.
    pub fn new<S: AsRef<str>>(nodes: &[S], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut names: Vec<String> = nodes.iter().map(|s| s.as_ref().to_string()).collect();
        names.sort();
        names.dedup();
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (i, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                points.push((vnode_point(name, v), i));
            }
        }
        // Ties (astronomically unlikely) resolve to the lexically smaller
        // name so every member computes the same owner.
        points.sort();
        HashRing {
            points,
            nodes: names,
            vnodes,
        }
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Index into `points` of the first point at or after `key`, wrapping.
    fn successor_point(&self, key: u64) -> usize {
        match self.points.partition_point(|&(p, _)| p < key) {
            i if i == self.points.len() => 0,
            i => i,
        }
    }

    /// The node owning `key`: the first node point clockwise from the key.
    ///
    /// # Panics
    /// Panics on an empty ring — a mesh always contains at least itself.
    pub fn owner(&self, key: u64) -> &str {
        let (_, node) = self.points[self.successor_point(key)];
        &self.nodes[node]
    }

    /// The first `r` *distinct* nodes clockwise from `key` — the owner
    /// followed by its successors, which is where replicas live. Returns
    /// fewer than `r` nodes when the ring is smaller than `r`, and an
    /// empty set for `r == 0`.
    pub fn replicas(&self, key: u64, r: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(r.min(self.nodes.len()));
        if r == 0 || self.points.is_empty() {
            return out;
        }
        let start = self.successor_point(key);
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            let name = self.nodes[node].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == r.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// Whether `name` is currently on the ring.
    pub fn contains(&self, name: &str) -> bool {
        self.nodes.iter().any(|n| n == name)
    }

    /// Adds `name` to the ring without disturbing any other member's
    /// points: the resulting ring is bit-identical to one constructed from
    /// the enlarged name set, so every node that applies the same JOIN
    /// converges on the same ownership. Returns `false` (and changes
    /// nothing) when the name is already a member.
    pub fn add(&mut self, name: &str) -> bool {
        if self.contains(name) {
            return false;
        }
        self.rebuild_with(|names| names.push(name.to_string()));
        true
    }

    /// Removes `name` from the ring; only keys it owned change owner (the
    /// defining consistent-hashing property, pinned by the module tests).
    /// Returns `false` when the name was not a member. Removing the last
    /// node leaves an empty ring — callers guard against removing
    /// themselves.
    pub fn remove(&mut self, name: &str) -> bool {
        if !self.contains(name) {
            return false;
        }
        self.rebuild_with(|names| names.retain(|n| n != name));
        true
    }

    /// Applies `edit` to the name set and rebuilds the point list exactly
    /// as [`HashRing::new`] would — membership changes stay a pure
    /// function of the name set, never of the edit order.
    fn rebuild_with(&mut self, edit: impl FnOnce(&mut Vec<String>)) {
        let mut names = std::mem::take(&mut self.nodes);
        edit(&mut names);
        *self = HashRing::new(&names, self.vnodes);
    }

    /// The owner of `key` on the ring with `exclude` removed — where a
    /// draining node ships its entries. `None` when `exclude` is the only
    /// node.
    pub fn owner_excluding(&self, key: u64, exclude: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.successor_point(key);
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            let name = self.nodes[node].as_str();
            if name != exclude {
                return Some(name);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = HashRing::new(&names(5), DEFAULT_VNODES);
        let mut shuffled = names(5);
        shuffled.reverse();
        let b = HashRing::new(&shuffled, DEFAULT_VNODES);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)) {
            assert_eq!(a.owner(key), b.owner(key));
        }
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn leave_moves_only_the_departed_nodes_keys() {
        // Consistent hashing's defining property: removing one of N nodes
        // changes the owner only for keys the departed node owned (~K/N),
        // and every such key lands on a surviving node.
        let full = HashRing::new(&names(5), DEFAULT_VNODES);
        let survivors: Vec<String> = names(5).into_iter().skip(1).collect();
        let reduced = HashRing::new(&survivors, DEFAULT_VNODES);
        let departed = &names(5)[0];
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(17))
            .collect();
        let mut moved = 0usize;
        for &key in &keys {
            let before = full.owner(key);
            let after = reduced.owner(key);
            if before == departed {
                moved += 1;
                assert!(survivors.iter().any(|s| s == after));
            } else {
                assert_eq!(before, after, "key not owned by the leaver moved");
            }
        }
        // The departed node owned roughly K/N keys; allow generous slack
        // for vnode imbalance.
        let expect = keys.len() / 5;
        assert!(
            moved > expect / 2 && moved < expect * 2,
            "moved {moved}, expected ≈{expect}"
        );
    }

    #[test]
    fn join_moves_only_keys_the_new_node_takes() {
        let small = HashRing::new(&names(4), DEFAULT_VNODES);
        let grown = HashRing::new(&names(5), DEFAULT_VNODES);
        let newcomer = &names(5)[4];
        let mut moved = 0usize;
        let total = 20_000usize;
        for key in (0..total as u64).map(|i| i.wrapping_mul(0x517cc1b727220a95)) {
            if small.owner(key) != grown.owner(key) {
                assert_eq!(grown.owner(key), newcomer, "moved key must go to joiner");
                moved += 1;
            }
        }
        let expect = total / 5;
        assert!(
            moved > expect / 2 && moved < expect * 2,
            "moved {moved}, expected ≈{expect}"
        );
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(&names(4), DEFAULT_VNODES);
        let mut counts = std::collections::HashMap::new();
        let total = 40_000u64;
        for key in (0..total).map(|i| i.wrapping_mul(0x2545f4914f6cdd1d)) {
            *counts.entry(ring.owner(key).to_string()).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 4, "every node owns some keys");
        for (node, &c) in &counts {
            let share = c as f64 / total as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "{node} owns {share:.2} of keys"
            );
        }
    }

    #[test]
    fn replica_sets_are_distinct_start_at_the_owner_and_stay_stable() {
        let ring = HashRing::new(&names(5), DEFAULT_VNODES);
        for key in (0..2_000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)) {
            let reps = ring.replicas(key, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.owner(key), "replica set starts at owner");
            let mut dedup = reps.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas are distinct nodes");
        }
        // Asking for more replicas than nodes returns every node once,
        // and asking for zero returns none at all.
        let all = ring.replicas(42, 10);
        assert_eq!(all.len(), 5);
        assert!(ring.replicas(42, 0).is_empty());
    }

    #[test]
    fn owner_excluding_skips_exactly_the_excluded_node() {
        let ring = HashRing::new(&names(3), DEFAULT_VNODES);
        for key in (0..2_000u64).map(|i| i.wrapping_mul(0xd6e8feb86659fd93)) {
            let owner = ring.owner(key).to_string();
            let fallback = ring.owner_excluding(key, &owner).expect("two peers left");
            assert_ne!(fallback, owner);
            // Excluding a non-owner changes nothing.
            let other = ring.nodes().iter().find(|n| **n != owner).unwrap();
            if owner != *other {
                assert_eq!(ring.owner_excluding(key, other), Some(owner.as_str()));
            }
        }
        let solo = HashRing::new(&["only:1"], 8);
        assert_eq!(solo.owner_excluding(7, "only:1"), None);
    }

    #[test]
    fn live_add_and_remove_match_fresh_construction() {
        // A ring grown (or shrunk) one member at a time must be
        // indistinguishable from one built from the final name set — the
        // property every JOIN/LEAVE applier relies on to converge.
        let mut live = HashRing::new(&names(3), DEFAULT_VNODES);
        assert!(live.add(&names(5)[3]));
        assert!(live.add(&names(5)[4]));
        assert!(!live.add(&names(5)[4]), "re-adding a member is a no-op");
        let fresh = HashRing::new(&names(5), DEFAULT_VNODES);
        assert_eq!(live.nodes(), fresh.nodes());
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)) {
            assert_eq!(live.owner(key), fresh.owner(key));
            assert_eq!(live.replicas(key, 3), fresh.replicas(key, 3));
        }
        assert!(live.remove(&names(5)[1]));
        assert!(!live.remove(&names(5)[1]), "re-removing is a no-op");
        let reduced: Vec<String> = names(5).into_iter().filter(|n| *n != names(5)[1]).collect();
        let fresh = HashRing::new(&reduced, DEFAULT_VNODES);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x517cc1b727220a95)) {
            assert_eq!(live.owner(key), fresh.owner(key));
        }
        assert!(live.contains(&names(5)[0]));
        assert!(!live.contains(&names(5)[1]));
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::new(&["127.0.0.1:7878"], DEFAULT_VNODES);
        assert_eq!(ring.len(), 1);
        for key in [0, 1, u64::MAX, 0xdeadbeef] {
            assert_eq!(ring.owner(key), "127.0.0.1:7878");
        }
    }

    #[test]
    fn duplicate_names_collapse() {
        let ring = HashRing::new(&["a:1", "b:2", "a:1"], 16);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.nodes(), ["a:1", "b:2"]);
    }
}
