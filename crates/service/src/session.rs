//! The session layer: one request/response loop per connection.
//!
//! Decodes request lines, dispatches them to the [`Engine`], and encodes
//! responses under the connection's negotiated [`FrameMode`] — the only
//! piece of per-connection protocol state. A `HELLO` switches the mode for
//! every *subsequent* response; the `HELLO` ack itself is always a plain
//! JSON line, so a client can read it before committing to binary parsing.

use crate::engine::Engine;
use crate::frame::FrameMode;
use crate::proto::{decode_request, encode_response_framed, ErrorResponse, Request, Response};
use crate::transport::{Conn, RateLimiter};
use std::net::IpAddr;
use std::sync::Arc;

/// Charges `cost` tokens for this connection's peer; no limiter
/// configured, or no peer address available, always allows.
fn allow(rate: Option<&RateLimiter>, peer: Option<IpAddr>, cost: u64) -> bool {
    match (rate, peer) {
        (Some(limiter), Some(peer)) => limiter.allow(peer, cost),
        _ => true,
    }
}

/// Runs one connection to completion: reads lines until EOF, a write error,
/// or a SHUTDOWN. `peer` is the connection's source address (used by the
/// rate limiter and the REPLICATE peer check); `rate` is the per-IP
/// limiter — ORDER costs one token, BATCH one per member, everything else
/// (HELLO, STATS, METRICS, CANCEL, SHUTDOWN) is free.
pub fn run(mut conn: Conn, engine: &Arc<Engine>, peer: Option<IpAddr>, rate: Option<&RateLimiter>) {
    let mut mode = FrameMode::default();
    loop {
        let line = match conn.read_line() {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        engine.metrics().inc(&engine.metrics().requests);
        let response = match decode_request(&line) {
            Err(e) => {
                engine.metrics().inc(&engine.metrics().errors);
                Response::Error(ErrorResponse::fatal(e.to_string()))
            }
            Ok(Request::Hello { frames, proto: _ }) => {
                // This strict request→response loop only speaks v1, so the
                // ack says 1 no matter what level was requested.
                mode = frames;
                Response::Hello { frames, proto: 1 }
            }
            Ok(Request::Order(req)) => {
                if !allow(rate, peer, 1) {
                    engine.metrics().inc(&engine.metrics().rate_limited);
                    Response::Error(ErrorResponse::fatal("rate limited"))
                } else {
                    match engine.run_order(req) {
                        Ok(r) => Response::Order(r),
                        Err(e) => Response::Error(e),
                    }
                }
            }
            Ok(Request::Batch(reqs)) => {
                if !allow(rate, peer, reqs.len() as u64) {
                    engine.metrics().inc(&engine.metrics().rate_limited);
                    Response::Error(ErrorResponse::fatal("rate limited"))
                } else {
                    engine.metrics().inc(&engine.metrics().batches);
                    Response::Batch(engine.run_batch(reqs))
                }
            }
            Ok(Request::Stats) => Response::Stats(engine.stats_snapshot()),
            Ok(Request::Cancel { id }) => Response::CancelOk {
                pending: engine.cancel(id),
            },
            Ok(Request::Metrics) => Response::Metrics(engine.metrics_text()),
            // REPLICATE is peer-to-peer only: entries are served as
            // authoritative answers, so pushes are accepted solely from
            // configured mesh peer addresses.
            Ok(Request::Replicate { entry }) => {
                if !engine.replicate_allowed(peer) {
                    engine.metrics().inc(&engine.metrics().errors);
                    Response::Error(ErrorResponse::fatal(
                        "REPLICATE refused: sender is not a configured mesh peer",
                    ))
                } else {
                    match engine.apply_replicate(&entry) {
                        Ok(stored) => Response::ReplicateOk { stored },
                        Err(e) => {
                            engine.metrics().inc(&engine.metrics().errors);
                            Response::Error(e)
                        }
                    }
                }
            }
            // Membership traffic: PING is open (liveness probes are
            // harmless), JOIN is open by design (a rejoining node's own
            // address may not be in the allowlist yet), LEAVE / SYNC /
            // WARM are member-gated like REPLICATE.
            Ok(Request::Ping { from }) => engine.handle_ping(&from),
            Ok(Request::Join { from }) => match engine.handle_join(&from, peer) {
                Ok(r) => r,
                Err(e) => {
                    engine.metrics().inc(&engine.metrics().errors);
                    Response::Error(e)
                }
            },
            Ok(Request::Leave { from }) => match engine.handle_leave(&from, peer) {
                Ok(r) => r,
                Err(e) => {
                    engine.metrics().inc(&engine.metrics().errors);
                    Response::Error(e)
                }
            },
            Ok(Request::Sync { from, digests }) => {
                match engine.handle_sync(&from, &digests, peer) {
                    Ok(r) => r,
                    Err(e) => {
                        engine.metrics().inc(&engine.metrics().errors);
                        Response::Error(e)
                    }
                }
            }
            Ok(Request::Warm { from }) => match engine.handle_warm(&from, peer) {
                Ok(r) => r,
                Err(e) => {
                    engine.metrics().inc(&engine.metrics().errors);
                    Response::Error(e)
                }
            },
            Ok(Request::Shutdown) => {
                let drained = engine.begin_shutdown();
                let resp = Response::ShutdownOk { drained };
                let (line, frames) = encode_response_framed(&resp, mode);
                let _ = conn.write_response(&line, &frames);
                engine.mark_shutdown_complete();
                return;
            }
        };
        let (line, frames) = encode_response_framed(&response, mode);
        if conn.write_response(&line, &frames).is_err() {
            return;
        }
    }
}
