//! Fixed worker pool with a bounded queue and explicit backpressure.
//!
//! Submission never blocks: when the queue is full, [`WorkerPool::try_submit`]
//! returns [`SubmitError::QueueFull`] and the caller reports a retriable
//! error to the client instead of stalling the accept loop. Shutdown drains:
//! already-queued jobs run to completion before the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — retriable.
    QueueFull,
    /// The pool is draining for shutdown — not retriable.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    queue: VecDeque<Job>,
    active: usize,
    shutting_down: bool,
    completed: u64,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Wakes workers when a job arrives or shutdown starts.
    job_ready: Condvar,
    /// Wakes the drainer when the queue empties and workers go idle.
    idle: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads sharing a queue of at most `capacity` jobs.
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::with_capacity(capacity),
                active: 0,
                shutting_down: false,
                completed: 0,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orderd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Enqueues `job` without blocking, or rejects it.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut st = self.shared.state.lock().unwrap();
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue (excluding ones being executed).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Jobs currently being executed.
    pub fn active(&self) -> usize {
        self.shared.state.lock().unwrap().active
    }

    /// Maximum queue length.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Stops accepting work, waits for the queue to drain and all in-flight
    /// jobs to finish, then joins the workers. Returns the total number of
    /// jobs the pool completed over its lifetime.
    pub fn shutdown_drain(mut self) -> u64 {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutting_down = true;
            // Wait until nothing is queued and nothing is running.
            while !st.queue.is_empty() || st.active > 0 {
                st = self.shared.idle.wait(st).unwrap();
            }
        }
        self.shared.job_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.state.lock().unwrap().completed
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        // Run outside the lock; a panicking job must not kill the worker.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        st.completed += 1;
        let quiet = st.queue.is_empty() && st.active == 0;
        drop(st);
        if quiet {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                c.fetch_add(1, AtOrd::SeqCst);
            }))
            .unwrap();
        }
        let drained = pool.shutdown_drain();
        assert_eq!(counter.load(AtOrd::SeqCst), 16);
        assert_eq!(drained, 16);
    }

    #[test]
    fn queue_full_is_reported_not_blocked() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker so queued jobs cannot advance.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap(); // worker is now busy
        pool.try_submit(Box::new(|| {})).unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        // Queue (capacity 2) is now full.
        assert_eq!(pool.queue_depth(), 2);
        let err = pool.try_submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        release_tx.send(()).unwrap();
        assert_eq!(pool.shutdown_drain(), 3);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let pool = WorkerPool::new(2, 32);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(2));
                c.fetch_add(1, AtOrd::SeqCst);
            }))
            .unwrap();
        }
        let drained = pool.shutdown_drain();
        assert_eq!(
            counter.load(AtOrd::SeqCst),
            20,
            "drain finished every queued job"
        );
        assert_eq!(drained, 20);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("job blew up"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.try_submit(Box::new(move || {
            c.fetch_add(1, AtOrd::SeqCst);
        }))
        .unwrap();
        pool.shutdown_drain();
        assert_eq!(counter.load(AtOrd::SeqCst), 1);
    }
}
