//! The engine layer: everything below the wire.
//!
//! Owns the [`WorkerPool`], the [`ShardedOrderingCache`], the [`Metrics`]
//! and the shutdown state. Sessions call [`Engine::run_order`] /
//! [`Engine::run_batch`] / [`Engine::stats_snapshot`] /
//! [`Engine::begin_shutdown`] and never touch sockets; the transport layer
//! never touches orderings. Connection handlers block on an `mpsc` channel
//! with the request's wall-clock timeout while a pool worker computes.

use crate::cache::ShardedOrderingCache;
use crate::membership::Transition;
use crate::mesh::{Mesh, MeshTuning};
use crate::metrics::Metrics;
use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{
    ErrorResponse, MatrixFormat, MatrixSource, OrderRequest, OrderResponse, PermPayload,
};
use crate::server::Config;
use se_faults::{lock_unpoisoned, sites, Budget, FaultPlane};
use se_trace::{SpanEvent, Tracer};
use sparsemat::pattern::SymmetricPattern;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering as AtOrd};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The result of one ORDER execution, as sessions see it.
pub type OrderOutcome = Result<OrderResponse, ErrorResponse>;

/// One progress notification from a running ORDER, produced on the worker
/// thread as se-trace spans close. The session layer adds the request id
/// and puts it on the wire as a `PROGRESS` line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressUpdate {
    /// The span that just closed (`"lanczos"`, `"coarsest_solve"`,
    /// `"level[k]"`, `"rqi"`, `"degrade"`).
    pub stage: String,
    /// Monotone best-effort completion estimate in `[0, 100]`.
    pub percent: f64,
    /// Wall-clock µs since the request started executing.
    pub micros: u64,
    /// Cumulative matrix–vector products across eigensolver spans, once
    /// any span has reported them.
    pub matvecs: Option<u64>,
}

/// Where progress updates go: called on the worker thread, so it must be
/// cheap and non-blocking (the reactor sessions post to an inbox).
pub type ProgressSink = Arc<dyn Fn(ProgressUpdate) + Send + Sync>;

/// Minimum gap between emitted progress updates (the first one is free).
/// Keeps a deep multigrid hierarchy from flooding the connection.
const PROGRESS_THROTTLE: Duration = Duration::from_millis(10);

/// The compute core of the service: worker pool + sharded cache + metrics +
/// shutdown choreography, with no knowledge of sockets or framing.
pub struct Engine {
    /// `None` once a SHUTDOWN has taken the pool for draining.
    pool: Mutex<Option<WorkerPool>>,
    cache: ShardedOrderingCache,
    metrics: Metrics,
    shutting_down: AtomicBool,
    /// Set once the drain finished and the SHUTDOWN ack went out; the
    /// accept thread waits on it so the process outlives the ack.
    shutdown_complete: (Mutex<bool>, Condvar),
    default_timeout: Duration,
    solver_threads: usize,
    log_requests: bool,
    cancel: Mutex<CancelState>,
    /// Deterministic fault-injection plane shared by every worker
    /// ([`FaultPlane::disabled`] in production).
    faults: FaultPlane,
    /// The listener's bound address — poked by [`Engine::begin_shutdown`]
    /// to wake the blocking accept loop.
    addr: SocketAddr,
    /// The consistent-hash peer mesh, present when `Config::peers` is
    /// non-empty. Owns the live ring, the member table, the hint log and
    /// the per-peer connection pools.
    mesh: Option<Mesh>,
    /// Stop signal for the mesh heartbeat thread
    /// ([`Engine::start_mesh_tasks`]); flipped by
    /// [`Engine::begin_shutdown`].
    mesh_stop: Arc<(Mutex<bool>, Condvar)>,
    /// Set once the startup JOIN announcement and WARM pull have finished
    /// (immediately for a node without a mesh). Lets tests — and operators
    /// scripting a rolling restart — distinguish "listening" from "warmed
    /// up": before this flips, a WARM exchange may still be in flight.
    mesh_warmed: AtomicBool,
    /// Solver pools keyed by resolved thread count, reused across requests.
    /// Building a [`sparsemat::par::TaskPool`] spawns and later joins OS
    /// threads; doing that per request wasted milliseconds and — worse —
    /// meant concurrent requests could never share workers. With the cache,
    /// simultaneous solves at the same thread count submit their regions to
    /// one work-stealing pool and genuinely overlap. Bounded by
    /// [`SOLVER_POOL_CACHE_CAP`]; drained (workers joined) on shutdown.
    solver_pools: Mutex<Vec<(usize, sparsemat::par::TaskPool)>>,
}

/// Upper bound on distinct cached solver pools. Keys are thread counts
/// clamped to the host's cores, so the map is naturally small; the cap keeps
/// the worst case (many distinct counts on a many-core host) bounded, with
/// oldest-first eviction (a dropped pool joins its workers once its last
/// in-flight request finishes).
const SOLVER_POOL_CACHE_CAP: usize = 8;

/// Upper bound on remembered-but-unconsumed cancel marks. Marks are only
/// set for ids that are pending, and the pending job consumes its mark, so
/// this cap matters only when a queued job is dropped without ever running
/// (e.g. the pool dies mid-shutdown) — it keeps that leak bounded.
const CANCEL_SET_CAP: usize = 1024;

/// Which client-assigned request ids are in flight and which have been
/// cancelled. One mutex guards both sets so a cancel can never race a job's
/// completion check: either the cancel lands while the id is pending (the
/// job will observe it and suppress its response) or the job already
/// finished (the cancel reports nothing to do).
#[derive(Default)]
struct CancelState {
    /// Ids of ORDER requests currently queued or running.
    pending: HashSet<u64>,
    /// Ids cancelled but not yet observed by their job.
    cancelled: HashSet<u64>,
    /// Insertion order of `cancelled`, for the bounded-capacity eviction.
    fifo: VecDeque<u64>,
    /// Per-request solver budgets, registered while the id is pending. A
    /// CANCEL flips the budget's shared cancel flag, so a solve that is
    /// already running aborts at its next iteration boundary instead of
    /// computing to completion.
    budgets: HashMap<u64, Budget>,
}

/// A submitted job: the channel its result will arrive on, plus the
/// wall-clock deadline the session enforces.
struct Pending {
    rx: mpsc::Receiver<OrderOutcome>,
    timeout: Duration,
}

impl Engine {
    /// Builds the engine from the server configuration and the already-bound
    /// listener address. Fails only when a cache directory is configured and
    /// cannot be created.
    pub fn new(cfg: &Config, addr: SocketAddr) -> std::io::Result<Engine> {
        let mut cache = match &cfg.cache_dir {
            Some(dir) => ShardedOrderingCache::open_budgeted(
                cfg.cache_budget_bytes,
                cfg.cache_shards,
                dir,
                cfg.cache_dir_budget,
            )?,
            None => ShardedOrderingCache::new(cfg.cache_budget_bytes, cfg.cache_shards),
        };
        cache.set_faults(cfg.faults.clone());
        let mesh = if cfg.peers.is_empty() {
            None
        } else {
            Some(Mesh::with_tuning(
                &cfg.peers,
                cfg.replicas,
                addr,
                cfg.faults.clone(),
                MeshTuning {
                    dial_timeout: Duration::from_millis(cfg.peer_dial_timeout_ms),
                    io_timeout: Duration::from_millis(cfg.peer_io_timeout_ms),
                    suspect_after_ms: cfg.peer_suspect_after_ms,
                    dead_after_ms: cfg.peer_dead_after_ms.max(cfg.peer_suspect_after_ms),
                    hint_cap: cfg.hint_cap,
                    hint_dir: cfg.cache_dir.clone(),
                    clock: crate::membership::Clock::system(),
                },
            ))
        };
        Ok(Engine {
            pool: Mutex::new(Some(WorkerPool::new(cfg.workers, cfg.queue_capacity))),
            cache,
            metrics: Metrics::new(),
            shutting_down: AtomicBool::new(false),
            shutdown_complete: (Mutex::new(false), Condvar::new()),
            default_timeout: Duration::from_millis(cfg.default_timeout_ms),
            solver_threads: cfg.solver_threads,
            log_requests: cfg.log_requests,
            cancel: Mutex::new(CancelState::default()),
            faults: cfg.faults.clone(),
            addr,
            mesh,
            mesh_stop: Arc::new((Mutex::new(false), Condvar::new())),
            mesh_warmed: AtomicBool::new(false),
            solver_pools: Mutex::new(Vec::new()),
        })
    }

    /// The cached solver pool for a clamped request thread count (`0` =
    /// all cores), building and caching it on first use. Serial counts
    /// bypass the cache — a serial pool owns no threads worth reusing.
    fn solver_pool(&self, threads: usize) -> sparsemat::par::TaskPool {
        let resolved = if threads == 0 {
            sparsemat::par::available_threads()
        } else {
            threads
        };
        if resolved <= 1 {
            return sparsemat::par::TaskPool::serial();
        }
        let mut pools = lock_unpoisoned(&self.solver_pools);
        if let Some((_, p)) = pools.iter().find(|(k, _)| *k == resolved) {
            return p.clone();
        }
        let p = sparsemat::par::TaskPool::new(resolved);
        if pools.len() >= SOLVER_POOL_CACHE_CAP {
            pools.remove(0);
        }
        pools.push((resolved, p.clone()));
        p
    }

    /// Aggregated scheduler health over every cached solver pool:
    /// `(cached pools, cumulative steals, cumulative parks, currently
    /// parked workers)`. Feeds STATS and METRICS.
    fn solver_pool_health(&self) -> (usize, u64, u64, usize) {
        let pools = lock_unpoisoned(&self.solver_pools);
        let (mut steals, mut parks, mut parked) = (0u64, 0u64, 0usize);
        for (_, p) in pools.iter() {
            let s = p.stats();
            steals += s.steals;
            parks += s.parks;
            parked += p.parked_workers();
        }
        (pools.len(), steals, parks, parked)
    }

    /// The peer mesh, when this node was configured with `Config::peers`.
    pub fn mesh(&self) -> Option<&Mesh> {
        self.mesh.as_ref()
    }

    /// The engine's fault-injection plane (shared with every worker).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// The live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The ordering cache (exposed for tests and the composition root).
    pub fn cache(&self) -> &ShardedOrderingCache {
        &self.cache
    }

    /// Whether a SHUTDOWN has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(AtOrd::SeqCst)
    }

    /// Marks the drain as finished so [`Engine::wait_shutdown_complete`]
    /// returns.
    pub fn mark_shutdown_complete(&self) {
        *self.shutdown_complete.0.lock().unwrap() = true;
        self.shutdown_complete.1.notify_all();
    }

    /// Blocks until [`Engine::mark_shutdown_complete`] has run.
    pub fn wait_shutdown_complete(&self) {
        let mut done = self.shutdown_complete.0.lock().unwrap();
        while !*done {
            done = self.shutdown_complete.1.wait(done).unwrap();
        }
    }

    /// Stops accepting work, drains the pool, and returns how many jobs the
    /// pool completed over its lifetime. Idempotent: later calls return 0.
    pub fn begin_shutdown(self: &Arc<Self>) -> u64 {
        self.shutting_down.store(true, AtOrd::SeqCst);
        // Stop the mesh heartbeat thread before tearing anything down so a
        // half-shut node never PINGs peers or replays hints mid-drain.
        {
            let (stop, cvar) = &*self.mesh_stop;
            *lock_unpoisoned(stop) = true;
            cvar.notify_all();
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let pool = lock_unpoisoned(&self.pool).take();
        let Some(pool) = pool else {
            return 0;
        };
        let completed = pool.shutdown_drain();
        // Announce the departure so peers reassign this node's key range
        // immediately instead of waiting out the suspicion window. Happens
        // once (the pool guard above) and before the handoff, so the
        // entries ship to the range's *new* owners.
        if let Some(mesh) = &self.mesh {
            mesh.announce_leave();
        }
        // Drain the solver pool cache: dropping the last clone of each
        // TaskPool joins its workers. Any solve still holding a clone keeps
        // its pool alive until it finishes — the workers join then.
        lock_unpoisoned(&self.solver_pools).clear();
        // Mesh drain: with a spill directory configured, ship every spill
        // file to its key's owner on the ring *without* this node, so a
        // rolling restart loses no cached work. Runs after the pool drain
        // (no more writers touch the directory) and, because the pool is
        // taken exactly once, only on the first SHUTDOWN.
        if let (Some(mesh), Some(dir)) = (&self.mesh, self.cache.dir()) {
            let entries = crate::persist::load_all(dir);
            if !entries.is_empty() {
                let total = entries.len();
                let shipped = mesh.handoff(entries, &self.metrics);
                if self.log_requests {
                    eprintln!("[spectral-orderd] op=handoff shipped={shipped} of={total}");
                }
            }
        }
        completed
    }

    /// The STATS snapshot: metrics counters + pool depth + per-shard cache
    /// counters.
    pub fn stats_snapshot(&self) -> crate::json::Json {
        let (depth, active) = match lock_unpoisoned(&self.pool).as_ref() {
            Some(p) => (p.queue_depth(), p.active()),
            None => (0, 0),
        };
        let mut snap = self.metrics.snapshot(
            depth,
            active,
            &self.cache.shard_stats(),
            self.cache.dir().is_some(),
        );
        let (cached, steals, parks, parked) = self.solver_pool_health();
        if let crate::json::Json::Obj(pairs) = &mut snap {
            pairs.push((
                "solver_pool".to_string(),
                crate::metrics::solver_pool_json(cached, steals, parks, parked),
            ));
        }
        if let Some(mesh) = &self.mesh {
            if let crate::json::Json::Obj(pairs) = &mut snap {
                pairs.push(("mesh".to_string(), mesh.stats_json()));
            }
        }
        snap
    }

    /// Cancels the in-flight ORDER with client-assigned `id`. Returns
    /// whether the id was still pending: a queued job is dropped before it
    /// computes, a running one finishes but its response is replaced by an
    /// error line. Cancelling an unknown (or already completed) id is a
    /// no-op reporting `false`.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = lock_unpoisoned(&self.cancel);
        if !st.pending.contains(&id) {
            return false;
        }
        // Reach into a solve that is already running: the budget's shared
        // cancel flag makes it abort at its next iteration boundary.
        if let Some(budget) = st.budgets.get(&id) {
            budget.cancel();
        }
        if st.cancelled.insert(id) {
            st.fifo.push_back(id);
            if st.fifo.len() > CANCEL_SET_CAP {
                if let Some(old) = st.fifo.pop_front() {
                    st.cancelled.remove(&old);
                }
            }
        }
        true
    }

    fn register_pending(&self, id: Option<u64>, budget: &Budget) {
        if let Some(id) = id {
            let mut st = lock_unpoisoned(&self.cancel);
            st.pending.insert(id);
            st.budgets.insert(id, budget.clone());
        }
    }

    fn unregister_pending(&self, id: Option<u64>) {
        if let Some(id) = id {
            let mut st = lock_unpoisoned(&self.cancel);
            st.pending.remove(&id);
            st.cancelled.remove(&id);
            st.budgets.remove(&id);
        }
    }

    /// Job-side cancellation check: consumes the cancel mark for `id` if one
    /// is set. With `finishing` the pending registration is dropped either
    /// way (the job is done with the id).
    fn consume_cancel(&self, id: u64, finishing: bool) -> bool {
        let mut st = lock_unpoisoned(&self.cancel);
        let hit = st.cancelled.remove(&id);
        if hit || finishing {
            st.pending.remove(&id);
            st.budgets.remove(&id);
        }
        hit
    }

    /// Submits one ordering job and waits for its result under the timeout.
    pub fn run_order(self: &Arc<Self>, req: OrderRequest) -> OrderOutcome {
        let pending = self.submit_order(req)?;
        self.await_order(pending)
    }

    /// Submits one ordering job without blocking: `done` runs on the worker
    /// thread when the outcome is ready, and `progress` (when given)
    /// receives [`ProgressUpdate`]s while the solve runs. Returns the
    /// request's effective wall-clock timeout so the caller can arm its own
    /// deadline — unlike [`Engine::run_order`], *nothing* here enforces it;
    /// a reactor session answers the timeout itself and drops the late
    /// completion when it eventually arrives.
    pub fn submit_order_async(
        self: &Arc<Self>,
        req: OrderRequest,
        progress: Option<ProgressSink>,
        done: Box<dyn FnOnce(OrderOutcome) + Send>,
    ) -> Result<Duration, ErrorResponse> {
        self.submit_order_with(req, progress, done)
    }

    /// Pipelined batch: submit everything first, then collect in order, so
    /// the pool overlaps the work across its workers.
    pub fn run_batch(self: &Arc<Self>, reqs: Vec<OrderRequest>) -> Vec<OrderOutcome> {
        let submitted: Vec<Result<Pending, ErrorResponse>> =
            reqs.into_iter().map(|r| self.submit_order(r)).collect();
        submitted
            .into_iter()
            .map(|slot| slot.and_then(|pending| self.await_order(pending)))
            .collect()
    }

    fn submit_order(self: &Arc<Self>, req: OrderRequest) -> Result<Pending, ErrorResponse> {
        let (tx, rx) = mpsc::channel::<OrderOutcome>();
        let timeout = self.submit_order_with(
            req,
            None,
            Box::new(move |outcome| {
                // The receiver may have timed out and gone; ignore send
                // errors.
                let _ = tx.send(outcome);
            }),
        )?;
        Ok(Pending { rx, timeout })
    }

    fn submit_order_with(
        self: &Arc<Self>,
        req: OrderRequest,
        progress: Option<ProgressSink>,
        done: Box<dyn FnOnce(OrderOutcome) + Send>,
    ) -> Result<Duration, ErrorResponse> {
        self.metrics.inc(&self.metrics.orders);
        let timeout = req
            .timeout_ms
            .map_or(self.default_timeout, Duration::from_millis);
        // The solver gets a slightly earlier deadline than the session's
        // wall-clock timeout: the reserved slice pays for queueing and
        // response encoding, so a solve that would blow the timeout instead
        // aborts cooperatively and degrades to a cheaper rung in time to
        // still answer.
        let budget = Budget::new(Some(solver_deadline(timeout)), None);
        let job_engine = Arc::clone(self);
        let req_id = req.id;
        self.register_pending(req_id, &budget);
        let done = DoneGuard {
            done: Some(done),
            armed: false,
            engine: Arc::clone(self),
        };
        let submit = {
            let guard = lock_unpoisoned(&self.pool);
            match guard.as_ref() {
                Some(pool) => pool.try_submit(Box::new(move || {
                    let mut done = done;
                    // From here on the submitter is answered even if the
                    // job panics (the guard fires on unwind).
                    done.armed = true;
                    // A queued job whose id was cancelled is dropped before
                    // it computes; one cancelled mid-run finishes but its
                    // response is suppressed. Both paths answer the
                    // submitter with the same error line.
                    let outcome = if req
                        .id
                        .is_some_and(|id| job_engine.consume_cancel(id, false))
                    {
                        job_engine.metrics.inc(&job_engine.metrics.cancelled);
                        Err(ErrorResponse::fatal("request cancelled"))
                    } else {
                        let out = job_engine.execute_order(&req, &budget, progress.as_ref());
                        if req.id.is_some_and(|id| job_engine.consume_cancel(id, true)) {
                            job_engine.metrics.inc(&job_engine.metrics.cancelled);
                            Err(ErrorResponse::fatal("request cancelled"))
                        } else {
                            out
                        }
                    };
                    done.complete(outcome);
                })),
                None => Err(SubmitError::ShuttingDown),
            }
        };
        match submit {
            Ok(()) => Ok(timeout),
            Err(SubmitError::QueueFull) => {
                self.unregister_pending(req_id);
                self.metrics.inc(&self.metrics.queue_rejections);
                Err(ErrorResponse::retriable("queue full, retry later"))
            }
            Err(SubmitError::ShuttingDown) => {
                self.unregister_pending(req_id);
                self.metrics.inc(&self.metrics.errors);
                Err(ErrorResponse::fatal("server is shutting down"))
            }
        }
    }

    fn await_order(&self, pending: Pending) -> OrderOutcome {
        match pending.rx.recv_timeout(pending.timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.metrics.inc(&self.metrics.timeouts);
                Err(ErrorResponse::retriable("request timed out"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.metrics.inc(&self.metrics.errors);
                Err(ErrorResponse::fatal("worker dropped the request"))
            }
        }
    }

    /// Worker-side execution: parse, consult the cache, order, record
    /// metrics. A hit returns the cache's pre-encoded payload
    /// ([`PermPayload::Cached`]) so the session writes the stored bytes
    /// without re-encoding; a miss inserts and reuses the freshly encoded
    /// payload the same way. The ordering runs through the graceful-
    /// degradation ladder under `budget`, so an exhausted deadline, a
    /// CANCEL or an injected solver fault yields a valid (degraded)
    /// permutation instead of an error whenever possible.
    fn execute_order(
        &self,
        req: &OrderRequest,
        budget: &Budget,
        progress: Option<&ProgressSink>,
    ) -> OrderOutcome {
        let t0 = Instant::now();
        // Chaos site: a worker thread dying mid-request. The pool catches
        // the panic (the submitter sees "worker dropped the request"), and
        // every shared lock recovers from the poisoning.
        if self.faults.should_fail(sites::WORKER_PANIC) {
            panic!("injected worker panic ({})", sites::WORKER_PANIC);
        }
        let g = match load_pattern(&req.source) {
            Ok(g) => g,
            Err(e) => {
                self.metrics.inc(&self.metrics.errors);
                return Err(e);
            }
        };
        // A traced request bypasses the cache lookup — its span tree must
        // describe an actual computation — but the computed ordering is
        // still inserted below for future untraced hits. The trace subtree
        // itself is never cached.
        let cached = if req.trace {
            None
        } else {
            self.cache.get(&g, req.alg, req.compressed)
        };
        // Mesh: a local miss for a key another node is responsible for
        // forwards to the owner (then its replicas) and relays the peer's
        // response unchanged — degraded marker, trace and all. `hop` marks
        // a request that already crossed the mesh once; the receiver
        // answers strictly locally, so disagreeing ring views cost at most
        // one wasted computation, never a loop. When every candidate peer
        // is unreachable the request falls through to local computation:
        // the mesh degrades to independent nodes instead of erroring.
        if cached.is_none() && !req.hop {
            if let Some(mesh) = &self.mesh {
                let key = crate::cache::pattern_key(&g, req.alg, req.compressed);
                if !mesh.owns(key) {
                    if let Some(resp) = mesh.forward(key, req, &self.metrics) {
                        if self.log_requests {
                            eprintln!(
                                "[spectral-orderd] op=order id={} alg={} n={} nnz={} cache=forward micros={}",
                                req.id.map_or_else(|| "-".to_string(), |i| i.to_string()),
                                req.alg.name(),
                                g.n(),
                                g.nnz_lower_with_diagonal(),
                                t0.elapsed().as_micros(),
                            );
                        }
                        return Ok(resp);
                    }
                }
            }
        }
        let (stats, payload, compression_ratio, cache_hit, trace, alg_name, degraded) = match cached
        {
            Some(hit) => {
                self.metrics.inc(&self.metrics.cache_hits);
                let degraded = hit.degraded.map(|r| r.to_string());
                (
                    hit.stats,
                    hit.payload,
                    hit.compression_ratio,
                    true,
                    None,
                    req.alg.name().to_string(),
                    degraded,
                )
            }
            None => {
                self.metrics.inc(&self.metrics.cache_misses);
                // Clamp the client-supplied thread count to the machine's
                // actual parallelism: `0` keeps its "all cores" meaning,
                // anything else is capped so a hostile request can't make
                // the server spawn an unbounded number of OS threads.
                // (Decode already rejects values above
                // `MAX_REQUEST_THREADS` as malformed.)
                let threads = match req.threads.unwrap_or(self.solver_threads) {
                    0 => 0,
                    t => t.min(sparsemat::par::available_threads()),
                };
                let mut solver = se_order::SolverOpts::with_threads(threads);
                // Run on the shared per-thread-count pool instead of
                // spawning workers for this one request; concurrent solves
                // at the same count overlap their regions on one pool.
                solver.pool = Some(self.solver_pool(threads));
                // Every computed ordering runs under an enabled tracer: its
                // span tree feeds the per-stage histograms METRICS exposes
                // and, when the request asked, the response's trace field.
                // An enabled tracer never changes numerical results; a
                // progress-observing one only adds a sink call per span
                // close.
                let tracer = match progress {
                    Some(sink) => {
                        Tracer::enabled_with_observer(progress_observer(Arc::clone(sink), t0))
                    }
                    None => Tracer::enabled(),
                };
                solver.trace = tracer.clone();
                solver.budget = budget.clone();
                solver.faults = self.faults.clone();
                let computed = if req.compressed {
                    se_order::order_compressed_degraded_with(&g, req.alg, &solver)
                } else {
                    se_order::order_degraded_with(&g, req.alg, &solver)
                };
                let outcome = match computed {
                    Ok(v) => v,
                    Err(e) => {
                        self.metrics.inc(&self.metrics.errors);
                        return Err(ErrorResponse::fatal(format!(
                            "{} ordering failed: {e}",
                            req.alg.name()
                        )));
                    }
                };
                if let Some(reason) = &outcome.degraded {
                    self.metrics.inc_degraded(reason);
                }
                if let Some(stage) = outcome.budget_abort_stage {
                    self.metrics.inc_budget_abort(stage);
                }
                let o = outcome.ordering;
                let ratio = req.compressed.then_some(outcome.compression_ratio);
                // Cache clean results always. Among degraded ones, only
                // `not_converged` is a deterministic property of the matrix
                // worth remembering; deadline/cancel/fault degradations are
                // transient and must be recomputed next time.
                let cacheable = match outcome.degraded.as_deref() {
                    None | Some("not_converged") => true,
                    Some(_) => false,
                };
                let payload = if cacheable {
                    self.cache.insert(
                        &g,
                        req.alg,
                        req.compressed,
                        o.perm.order(),
                        crate::cache::OrderingMeta {
                            stats: o.stats,
                            compression_ratio: ratio,
                            degraded: outcome.degraded.as_deref(),
                        },
                    )
                } else {
                    Arc::new(crate::proto::EncodedPerm::new(o.perm.order().to_vec()))
                };
                // Mesh: the key's owner pushes a freshly computed cacheable
                // entry (in the spill byte layout) to its ring successors,
                // so replicas answer future reads for the key from their
                // own cache without forwarding. Best-effort and gated on
                // ownership — a node that computed locally only because a
                // forward failed does not spray copies around the ring.
                if cacheable {
                    if let Some(mesh) = &self.mesh {
                        let key = crate::cache::pattern_key(&g, req.alg, req.compressed);
                        if mesh.is_owner(key) {
                            mesh.replicate(
                                &crate::persist::PersistedEntry {
                                    key,
                                    n: g.n(),
                                    adjacency_len: g.adjacency_len(),
                                    stats: o.stats,
                                    compression_ratio: ratio,
                                    degraded: outcome.degraded.clone(),
                                    perm: o.perm.order().to_vec(),
                                },
                                &self.metrics,
                            );
                        }
                    }
                }
                let root = tracer.finish();
                if let Some(root) = &root {
                    for name in root.stage_names() {
                        self.metrics
                            .record_stage_latency(name, root.stage_micros(name));
                    }
                }
                let trace = if req.trace {
                    root.map(|r| Arc::<str>::from(r.render_json()))
                } else {
                    None
                };
                (
                    o.stats,
                    payload,
                    ratio,
                    false,
                    trace,
                    // A degraded response names the algorithm that actually
                    // produced the permutation (e.g. RCM on rung 3).
                    o.algorithm.name().to_string(),
                    outcome.degraded,
                )
            }
        };
        let micros = t0.elapsed().as_micros() as u64;
        self.metrics.record_latency(req.alg.name(), micros);
        if self.log_requests {
            eprintln!(
                "[spectral-orderd] op=order id={} alg={} n={} nnz={} cache={} micros={micros}",
                req.id.map_or_else(|| "-".to_string(), |i| i.to_string()),
                req.alg.name(),
                g.n(),
                g.nnz_lower_with_diagonal(),
                if cache_hit { "hit" } else { "miss" },
            );
        }
        Ok(OrderResponse {
            alg: alg_name,
            n: g.n(),
            nnz: g.nnz_lower_with_diagonal(),
            stats,
            perm: req.include_perm.then_some(PermPayload::Cached(payload)),
            cache_hit,
            micros,
            compression_ratio,
            degraded,
            trace,
        })
    }

    /// The METRICS exposition: the live counters, pool depth and per-shard
    /// cache stats rendered as Prometheus text
    /// ([`Metrics::render_prometheus`]).
    pub fn metrics_text(&self) -> String {
        let (depth, active) = match lock_unpoisoned(&self.pool).as_ref() {
            Some(p) => (p.queue_depth(), p.active()),
            None => (0, 0),
        };
        let mut text = self.metrics.render_prometheus(
            depth,
            active,
            &self.cache.shard_stats(),
            self.cache.dir().is_some(),
        );
        let (cached, steals, parks, parked) = self.solver_pool_health();
        text.push_str(&crate::metrics::render_solver_pool_prometheus(
            cached, steals, parks, parked,
        ));
        if let Some(mesh) = &self.mesh {
            text.push_str(&format!(
                "# HELP se_peer_mesh_size Nodes on the consistent-hash ring (peers + this node).\n\
                 # TYPE se_peer_mesh_size gauge\n\
                 se_peer_mesh_size {}\n\
                 # HELP se_peer_replication_factor Configured mesh replication factor.\n\
                 # TYPE se_peer_replication_factor gauge\n\
                 se_peer_replication_factor {}\n",
                mesh.size(),
                mesh.replicas(),
            ));
            text.push_str(&format!(
                "# HELP se_hints_queued Handoff hints currently parked for unreachable peers.\n\
                 # TYPE se_hints_queued gauge\n\
                 se_hints_queued {}\n",
                mesh.hints_queued(),
            ));
            text.push_str(
                "# HELP se_peer_state Failure-detector verdict per peer \
                 (0=alive, 1=suspect, 2=dead, 3=rejoining).\n\
                 # TYPE se_peer_state gauge\n",
            );
            for (peer, state) in mesh.members().snapshot() {
                text.push_str(&format!(
                    "se_peer_state{{peer=\"{}\",state=\"{}\"}} {}\n",
                    peer,
                    state.as_str(),
                    state.code(),
                ));
            }
        }
        text
    }

    /// Whether a REPLICATE push from source address `src` is accepted.
    /// Only mesh members take pushes at all, and only from addresses the
    /// configured peers resolve to ([`Mesh::replicate_allowed`]) — a
    /// replicated entry is served as an authoritative answer, so an open
    /// REPLICATE would let anyone who can reach the port silently poison
    /// the cache with a wrong permutation under someone else's key.
    pub fn replicate_allowed(&self, src: Option<std::net::IpAddr>) -> bool {
        self.mesh.as_ref().is_some_and(|m| m.replicate_allowed(src))
    }

    /// Applies a `REPLICATE` push from a peer: validates the entry bytes
    /// exactly like a spill file read back from disk
    /// ([`crate::persist::load_from`]) and inserts the entry into the
    /// local cache — spilling it to this node's own cache directory too,
    /// when one is configured. Returns whether the entry was stored
    /// (`false` when it exceeds the per-shard budget; malformed bytes are
    /// a fatal error). Callers gate on [`Engine::replicate_allowed`]
    /// first; this method only validates the bytes.
    pub fn apply_replicate(&self, bytes: &[u8]) -> Result<bool, ErrorResponse> {
        let entry = crate::persist::load_from(bytes)
            .map_err(|e| ErrorResponse::fatal(format!("bad REPLICATE entry: {e}")))?;
        let stored = self.cache.insert_persisted(entry);
        if stored {
            self.metrics.inc(&self.metrics.peer_entries_received);
        }
        Ok(stored)
    }

    /// Spawns the mesh background thread: announce this node to its peers
    /// (JOIN), warm its key range from live members, then run the
    /// heartbeat / suspicion / hint-replay / anti-entropy loop until
    /// [`Engine::begin_shutdown`] flips the stop signal. A no-op without
    /// a mesh, so a plain single node spawns nothing.
    pub fn start_mesh_tasks(self: &Arc<Self>, cfg: &Config) {
        if self.mesh.is_none() {
            return;
        }
        let engine = Arc::clone(self);
        let heartbeat = Duration::from_millis(cfg.peer_heartbeat_ms.max(10));
        let antientropy_every = cfg.antientropy_every;
        std::thread::Builder::new()
            .name("mesh-heartbeat".to_string())
            .spawn(move || engine.mesh_loop(heartbeat, antientropy_every))
            .expect("spawn mesh heartbeat thread");
    }

    /// Whether the startup membership sequence — JOIN announcement plus
    /// the bulk WARM pull of this node's key range — has finished.
    /// Trivially `true` without a mesh. Until it flips, a WARM exchange
    /// may still be in flight, so exact-count assertions (and rolling
    /// restart scripts waiting for a node to be warm) should poll this
    /// first.
    pub fn mesh_warmed(&self) -> bool {
        self.mesh.is_none() || self.mesh_warmed.load(AtOrd::SeqCst)
    }

    /// Body of the `mesh-heartbeat` thread.
    fn mesh_loop(self: Arc<Self>, heartbeat: Duration, antientropy_every: u32) {
        let Some(mesh) = self.mesh.as_ref() else {
            return;
        };
        // (Re)join: announce to every configured member and bulk-pull the
        // entries this node's key range is responsible for, so a restarted
        // node serves warm instead of recomputing its whole range.
        let (admitted_by, transitions) = mesh.announce();
        self.count_transitions(&transitions);
        let mut warmed = 0usize;
        for entry in mesh.pull_warm() {
            if self.cache.insert_persisted(entry) {
                warmed += 1;
                self.metrics.inc(&self.metrics.peer_entries_received);
            }
        }
        if self.log_requests {
            eprintln!("[spectral-orderd] op=mesh_join admitted_by={admitted_by} warmed={warmed}");
        }
        self.mesh_warmed.store(true, AtOrd::SeqCst);
        // Deterministic per-node jitter de-phases the members' heartbeats
        // so a mesh started by one script doesn't PING in lockstep.
        let seed = mesh
            .self_name()
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            });
        let span = (heartbeat.as_millis() as u64 / 4).max(1);
        let mut round: u64 = 0;
        let mut sync_cursor: usize = 0;
        loop {
            round += 1;
            let wait = heartbeat + Duration::from_millis(jitter_ms(seed, round, span));
            let (stop, cvar) = &*self.mesh_stop;
            let guard = lock_unpoisoned(stop);
            let (guard, _) = cvar.wait_timeout(guard, wait).unwrap();
            let stopped = *guard;
            drop(guard);
            if stopped {
                break;
            }
            let transitions = mesh.heartbeat_round();
            self.count_transitions(&transitions);
            // Hints parked for a peer drain as soon as it is routable
            // again (Rejoining counts — that is the whole point).
            for peer in mesh.peers_with_hints() {
                if mesh.members().routable(&peer) {
                    let delivered = mesh.replay_hints(&peer, &self.metrics);
                    if delivered > 0 && self.log_requests {
                        eprintln!(
                            "[spectral-orderd] op=hint_replay peer={peer} delivered={delivered}"
                        );
                    }
                }
            }
            if antientropy_every > 0 && round.is_multiple_of(u64::from(antientropy_every)) {
                let live: Vec<String> = mesh
                    .members()
                    .snapshot()
                    .into_iter()
                    .filter(|(_, s)| s.routable())
                    .map(|(n, _)| n)
                    .collect();
                if !live.is_empty() {
                    let peer = live[sync_cursor % live.len()].clone();
                    sync_cursor += 1;
                    let repaired = self.antientropy_with(&peer);
                    if repaired > 0 && self.log_requests {
                        eprintln!(
                            "[spectral-orderd] op=antientropy peer={peer} repaired={repaired}"
                        );
                    }
                }
            }
        }
    }

    /// Counts (and with `--log-requests`, logs) failure-detector
    /// transitions in `se_peer_transitions_total`.
    fn count_transitions(&self, transitions: &[Transition]) {
        for (peer, from, to) in transitions {
            self.metrics.inc_peer_transition(from.as_str(), to.as_str());
            if self.log_requests {
                eprintln!(
                    "[spectral-orderd] op=peer_state peer={peer} from={} to={}",
                    from.as_str(),
                    to.as_str()
                );
            }
        }
    }

    /// Answers a peer's PING. The ack doubles as passive liveness
    /// evidence: hearing from a peer refreshes its entry in the member
    /// table exactly like an answered heartbeat of our own.
    pub fn handle_ping(&self, from: &str) -> crate::proto::Response {
        if let Some(mesh) = &self.mesh {
            if let Some(t) = mesh.members().record_ack(from) {
                self.count_transitions(std::slice::from_ref(&t));
            }
            crate::proto::Response::Pong {
                from: mesh.self_name().to_string(),
            }
        } else {
            // A plain single node still answers PING (harmless, and it
            // lets operators probe liveness uniformly); it just has no
            // member table to refresh.
            crate::proto::Response::Pong {
                from: self.addr.to_string(),
            }
        }
    }

    /// Admits a (re)joining node announced over JOIN: marks it `Alive`,
    /// puts it (back) on the ring, records its source address in the
    /// REPLICATE allowlist, and answers with this node's member view.
    pub fn handle_join(
        &self,
        from: &str,
        src: Option<std::net::IpAddr>,
    ) -> Result<crate::proto::Response, ErrorResponse> {
        let Some(mesh) = &self.mesh else {
            return Err(ErrorResponse::fatal(
                "JOIN refused: this node is not a mesh member",
            ));
        };
        if self.faults.should_fail(sites::PEER_JOIN_REJECT) {
            return Err(ErrorResponse::retriable(
                "JOIN refused (injected fault), retry",
            ));
        }
        let (new_member, transition) = mesh.admit(from, src);
        if let Some(t) = transition {
            self.count_transitions(std::slice::from_ref(&t));
        }
        if self.log_requests {
            eprintln!("[spectral-orderd] op=join peer={from} new={new_member}");
        }
        let mut members = mesh.members().names();
        members.push(mesh.self_name().to_string());
        members.sort();
        members.dedup();
        Ok(crate::proto::Response::JoinOk { members })
    }

    /// Handles a peer's LEAVE announcement: marks it `Dead` and takes it
    /// off the ring immediately, so its key range is reassigned without
    /// waiting out the suspicion window. Member-gated like REPLICATE — a
    /// stranger must not be able to evict ring members.
    pub fn handle_leave(
        &self,
        from: &str,
        src: Option<std::net::IpAddr>,
    ) -> Result<crate::proto::Response, ErrorResponse> {
        let Some(mesh) = &self.mesh else {
            return Err(ErrorResponse::fatal(
                "LEAVE refused: this node is not a mesh member",
            ));
        };
        if !mesh.replicate_allowed(src) {
            return Err(ErrorResponse::fatal(
                "LEAVE refused: sender is not a configured mesh peer",
            ));
        }
        if let Some(t) = mesh.depart(from) {
            self.count_transitions(std::slice::from_ref(&t));
        }
        if self.log_requests {
            eprintln!("[spectral-orderd] op=leave peer={from}");
        }
        Ok(crate::proto::Response::LeaveOk)
    }

    /// Answers a joining peer's WARM pull with the encoded cache entries
    /// whose replica set includes it, capped at `WARM_BATCH_CAP` entries
    /// (anti-entropy repairs whatever a truncated warm-up missed).
    pub fn handle_warm(
        &self,
        from: &str,
        src: Option<std::net::IpAddr>,
    ) -> Result<crate::proto::Response, ErrorResponse> {
        let Some(mesh) = &self.mesh else {
            return Err(ErrorResponse::fatal(
                "WARM refused: this node is not a mesh member",
            ));
        };
        if !mesh.replicate_allowed(src) {
            return Err(ErrorResponse::fatal(
                "WARM refused: sender is not a configured mesh peer",
            ));
        }
        if let Some(t) = mesh.members().record_ack(from) {
            self.count_transitions(std::slice::from_ref(&t));
        }
        let mut entries = Vec::new();
        for key in self.cache.keys() {
            if mesh.replica_names(key).iter().any(|n| n == from) {
                if let Some(entry) = self.cache.export(key) {
                    entries.push(crate::persist::encode_entry(&entry));
                    if entries.len() >= WARM_BATCH_CAP {
                        break;
                    }
                }
            }
        }
        Ok(crate::proto::Response::WarmOk { entries })
    }

    /// Answers a peer's anti-entropy SYNC: compares its per-shard digests
    /// of the shared replica range against this node's own, and returns
    /// the divergent shard indices plus this node's keys in them, so the
    /// sender can push exactly the entries this node is missing.
    pub fn handle_sync(
        &self,
        from: &str,
        digests: &[u64],
        src: Option<std::net::IpAddr>,
    ) -> Result<crate::proto::Response, ErrorResponse> {
        let Some(mesh) = &self.mesh else {
            return Err(ErrorResponse::fatal(
                "SYNC refused: this node is not a mesh member",
            ));
        };
        if !mesh.replicate_allowed(src) {
            return Err(ErrorResponse::fatal(
                "SYNC refused: sender is not a configured mesh peer",
            ));
        }
        if let Some(t) = mesh.members().record_ack(from) {
            self.count_transitions(std::slice::from_ref(&t));
        }
        let (mine_digests, mine_keys) = self.shared_range_digests(from);
        let shards: Vec<usize> = if digests.len() != mine_digests.len() {
            // Incomparable digests (shard-count mismatch across versions):
            // offer everything and let the key lists sort it out.
            (0..mine_digests.len()).collect()
        } else {
            (0..mine_digests.len())
                .filter(|&i| digests[i] != mine_digests[i])
                .collect()
        };
        let keys: Vec<u64> = mine_keys
            .into_iter()
            .filter(|&k| shards.binary_search(&self.cache.shard_index(k)).is_ok())
            .collect();
        Ok(crate::proto::Response::SyncOk { shards, keys })
    }

    /// One anti-entropy exchange with `peer`: compare per-shard digests
    /// of the shared replica range over SYNC, then push every entry the
    /// peer's divergent shards are missing (plain REPLICATE via
    /// [`Mesh::push_entry`]). Returns how many entries were pushed.
    /// Repairs flow one way per exchange; the peer's own periodic
    /// exchange covers the other direction.
    pub fn antientropy_with(&self, peer: &str) -> usize {
        let Some(mesh) = &self.mesh else {
            return 0;
        };
        let (digests, mine) = self.shared_range_digests(peer);
        let Ok((shards, peer_keys)) = mesh.try_sync(peer, &digests) else {
            return 0;
        };
        if shards.is_empty() {
            return 0;
        }
        let theirs: HashSet<u64> = peer_keys.into_iter().collect();
        let mut repaired = 0;
        for key in mine {
            if !shards.contains(&self.cache.shard_index(key)) || theirs.contains(&key) {
                continue;
            }
            let Some(entry) = self.cache.export(key) else {
                continue;
            };
            let bytes = crate::persist::encode_entry(&entry);
            if mesh.push_entry(peer, &bytes).is_ok() {
                repaired += 1;
                self.metrics.inc(&self.metrics.antientropy_repairs);
            }
        }
        repaired
    }

    /// Per-shard FNV-1a digests over this node's cached keys restricted
    /// to the replica range it shares with `peer` — keys whose *natural*
    /// (unfiltered) replica set contains both nodes — plus those keys
    /// themselves, sorted ascending. Both sides of a SYNC restrict the
    /// same way, so with agreeing ring views the digests match exactly
    /// when the shared range is in sync.
    fn shared_range_digests(&self, peer: &str) -> (Vec<u64>, Vec<u64>) {
        let Some(mesh) = &self.mesh else {
            return (Vec::new(), Vec::new());
        };
        let me = mesh.self_name();
        let mut keys = Vec::new();
        for key in self.cache.keys() {
            let reps = mesh.replica_names(key);
            if reps.iter().any(|n| n == me) && reps.iter().any(|n| n == peer) {
                keys.push(key);
            }
        }
        let mut hashers: Vec<crate::cache::Fnv1a> = (0..self.cache.shard_count())
            .map(|_| crate::cache::Fnv1a::new())
            .collect();
        for &key in &keys {
            hashers[self.cache.shard_index(key)].write_u64(key);
        }
        (hashers.into_iter().map(|h| h.finish()).collect(), keys)
    }
}

/// Upper bound on entries one WARM response ships. A joining node warms
/// up in one bulk pull; the cap bounds the response size, and the
/// periodic anti-entropy exchange repairs whatever a truncated warm-up
/// missed.
const WARM_BATCH_CAP: usize = 256;

/// splitmix64 over `(seed, round)`, reduced to `[0, span)` — the
/// deterministic heartbeat jitter (no RNG state, reproducible per node).
fn jitter_ms(seed: u64, round: u64, span: u64) -> u64 {
    let mut z = seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z % span.max(1)
}

/// Guarantees the submitter of an async order is answered exactly once.
///
/// Disarmed while the job is merely queued (a synchronous rejection answers
/// through [`Engine::submit_order_with`]'s error return instead); armed the
/// moment the job starts executing. A panic mid-execution unwinds through
/// the never-invoked callback, and the guard's drop turns that into the
/// same `worker dropped the request` error the legacy channel path
/// reported as a disconnect — a reactor session would otherwise wait out
/// the full request timeout.
struct DoneGuard {
    done: Option<Box<dyn FnOnce(OrderOutcome) + Send>>,
    armed: bool,
    engine: Arc<Engine>,
}

impl DoneGuard {
    /// Answers with the job's real outcome (the normal path).
    fn complete(mut self, outcome: OrderOutcome) {
        if let Some(done) = self.done.take() {
            done(outcome);
        }
    }
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Some(done) = self.done.take() {
            self.engine.metrics.inc(&self.engine.metrics.errors);
            done(Err(ErrorResponse::fatal("worker dropped the request")));
        }
    }
}

/// The solver-budget deadline carved out of a request's wall-clock
/// timeout: an eighth of the timeout (clamped to 50–500 ms, and never more
/// than half the timeout) is reserved for queueing and response encoding.
/// [`Engine::await_order`] still enforces the full timeout on the session
/// side, so sub-reserve timeouts behave exactly as before.
fn solver_deadline(timeout: Duration) -> Duration {
    let reserve = (timeout / 8)
        .clamp(Duration::from_millis(50), Duration::from_millis(500))
        .min(timeout / 2);
    timeout - reserve
}

/// Builds the se-trace span observer that turns span closes into
/// [`ProgressUpdate`]s on `sink`.
///
/// The percent heuristic follows the spectral pipeline's shape: the
/// Lanczos run on the coarsest graph is the opening ~20%, the coarsest
/// solve lands at 25%, and the multigrid refinement sweep spans 25→95 —
/// each closing `level[k]` span reports `25 + 70·done/(done+k)`, since `k`
/// counts the levels still to refine. A closing `rqi` span means the
/// final polish finished (98%); `degrade` keeps the last estimate but
/// names the rung switch. Estimates are clamped monotone, and updates are
/// throttled to one per [`PROGRESS_THROTTLE`] (the first is free) except
/// for `degrade`, which always surfaces.
fn progress_observer(sink: ProgressSink, t0: Instant) -> se_trace::SpanObserver {
    struct ObserverState {
        last_emit: Option<Instant>,
        last_percent: f64,
        levels_done: usize,
        matvecs: u64,
        saw_matvecs: bool,
    }
    let state = Mutex::new(ObserverState {
        last_emit: None,
        last_percent: 0.0,
        levels_done: 0,
        matvecs: 0,
        saw_matvecs: false,
    });
    Arc::new(move |ev: &SpanEvent| {
        let mut st = lock_unpoisoned(&state);
        if let Some((_, v)) = ev.attrs.iter().find(|(k, _)| *k == "matvecs") {
            st.matvecs += *v as u64;
            st.saw_matvecs = true;
        }
        let percent = match ev.name {
            "lanczos" => 20.0,
            "coarsest_solve" => 25.0,
            "level" => {
                st.levels_done += 1;
                let remaining = ev.index.unwrap_or(0);
                25.0 + 70.0 * st.levels_done as f64 / (st.levels_done + remaining) as f64
            }
            "rqi" => 98.0,
            "degrade" => st.last_percent,
            _ => return,
        };
        let percent = percent.max(st.last_percent).min(100.0);
        st.last_percent = percent;
        let now = Instant::now();
        let throttled = st
            .last_emit
            .is_some_and(|at| now.duration_since(at) < PROGRESS_THROTTLE);
        if throttled && ev.name != "degrade" {
            return;
        }
        st.last_emit = Some(now);
        let stage = match ev.index {
            Some(i) => format!("{}[{i}]", ev.name),
            None => ev.name.to_string(),
        };
        let update = ProgressUpdate {
            stage,
            percent,
            micros: t0.elapsed().as_micros() as u64,
            matvecs: st.saw_matvecs.then_some(st.matvecs),
        };
        drop(st);
        sink(update);
    })
}

/// Loads the matrix pattern from an ORDER request's source.
fn load_pattern(source: &MatrixSource) -> Result<SymmetricPattern, ErrorResponse> {
    let fatal =
        |e: &dyn std::fmt::Display| ErrorResponse::fatal(format!("cannot read matrix: {e}"));
    let from_csr = |m: sparsemat::csr::CsrMatrix| {
        m.symmetrize()
            .and_then(|s| s.pattern())
            .map_err(|e| fatal(&e))
    };
    match source {
        MatrixSource::Inline { format, payload } => match format {
            MatrixFormat::MatrixMarket => sparsemat::io::read_matrix_market_str(payload)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
            MatrixFormat::Chaco => sparsemat::io::read_chaco_str(payload).map_err(|e| fatal(&e)),
            MatrixFormat::HarwellBoeing => sparsemat::io::read_harwell_boeing_str(payload)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
        },
        MatrixSource::Path(path) => match MatrixFormat::from_path(path) {
            MatrixFormat::MatrixMarket => sparsemat::io::read_matrix_market(path)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
            MatrixFormat::Chaco => sparsemat::io::read_chaco(path).map_err(|e| fatal(&e)),
            MatrixFormat::HarwellBoeing => sparsemat::io::read_harwell_boeing(path)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_engine() -> Arc<Engine> {
        let cfg = Config::default();
        Arc::new(Engine::new(&cfg, "127.0.0.1:0".parse().unwrap()).unwrap())
    }

    #[test]
    fn solver_pool_cache_reuses_per_thread_count() {
        let e = test_engine();
        // Serial counts bypass the cache entirely.
        assert!(!e.solver_pool(1).is_parallel());
        assert!(e.solver_pool(0).threads() >= 1);
        let serial_cached = e.solver_pool_health().0;
        // `0` caches only when the host has more than one core.
        assert_eq!(
            serial_cached,
            usize::from(sparsemat::par::available_threads() > 1)
        );

        // Multi-thread counts are cached and found again, one entry per
        // distinct count.
        let base = serial_cached;
        let a = e.solver_pool(4);
        assert_eq!(e.solver_pool_health().0, base + 1);
        let b = e.solver_pool(4);
        assert_eq!(e.solver_pool_health().0, base + 1, "same count must hit");
        assert_eq!(a.threads(), b.threads());
        if a.is_parallel() {
            // Regions run on `b` show up in `a`'s stats: one shared pool.
            let before = a.stats().regions;
            let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
            let _ = b.dot(&v, &v);
            assert_eq!(a.stats().regions, before + 1);
        }
        let _ = e.solver_pool(3);
        assert_eq!(e.solver_pool_health().0, base + 2);
    }

    #[test]
    fn solver_pool_cache_is_bounded_and_cleared_on_shutdown() {
        let e = test_engine();
        for t in 0..SOLVER_POOL_CACHE_CAP + 3 {
            let _ = e.solver_pool(t + 2);
        }
        assert_eq!(e.solver_pool_health().0, SOLVER_POOL_CACHE_CAP);
        // Oldest entries were evicted: the first count misses (re-inserting
        // it evicts again, keeping the cap).
        let _ = e.solver_pool(2);
        assert_eq!(e.solver_pool_health().0, SOLVER_POOL_CACHE_CAP);

        e.begin_shutdown();
        assert_eq!(
            e.solver_pool_health().0,
            0,
            "shutdown must drop every cached pool"
        );
    }
}
