//! Sharded, optionally persistent, content-addressed ordering cache.
//!
//! Orderings are pure functions of the sparsity pattern, the algorithm and
//! the `compressed` flag, so the cache key is an FNV-1a hash of
//! `(n, xadj, adjncy, algorithm, compressed)`. The key space is split into
//! `N` contiguous key ranges, each guarded by its own mutex with its own
//! byte budget and LRU list — concurrent requests for different patterns
//! contend only when their keys land in the same range, instead of
//! serializing on one global lock.
//!
//! Entries store the permutation **pre-encoded in both wire forms**
//! ([`EncodedPerm`]: NDJSON array text + binary frame) behind an `Arc`, so
//! a hit hands the session shareable bytes and skips base-10 rendering,
//! frame building and permutation cloning entirely.
//!
//! With a cache directory configured, every insert is spilled to disk
//! ([`crate::persist`]) and evictions delete their spill file; a restarted
//! server reloads the directory and serves hits without recomputing.

use crate::persist::{self, PersistedEntry};
use crate::proto::EncodedPerm;
use se_faults::{lock_unpoisoned, FaultPlane};
use se_order::Algorithm;
use sparsemat::envelope::EnvelopeStats;
use sparsemat::pattern::SymmetricPattern;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a over a stream of `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs one word, byte by byte (little-endian).
    pub fn write_u64(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a raw byte slice (used by the mesh ring to hash node names).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a pattern + algorithm + compression flag into a cache key.
/// The request's `threads` field deliberately never enters the key
/// (orderings are bit-identical across thread counts); `compressed` does,
/// because it changes the resulting permutation.
pub fn pattern_key(g: &SymmetricPattern, alg: Algorithm, compressed: bool) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(g.n() as u64);
    for &x in g.xadj() {
        h.write_u64(x as u64);
    }
    for &a in g.adjncy() {
        h.write_u64(a as u64);
    }
    h.write_u64(alg as u64);
    h.write_u64(compressed as u64);
    h.finish()
}

/// What a cache hit hands back: everything the engine needs to build a
/// response without touching the ordering pipeline (the payload is shared,
/// not cloned).
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// Envelope statistics of the cached ordering.
    pub stats: EnvelopeStats,
    /// The permutation, pre-encoded in both wire forms.
    pub payload: Arc<EncodedPerm>,
    /// Compression ratio when the entry was computed with `compressed`.
    pub compression_ratio: Option<f64>,
    /// Machine-readable degradation reason carried by entries computed on
    /// a fallback rung (only `not_converged` entries are ever cached — the
    /// other reasons are transient and recomputed instead).
    pub degraded: Option<Arc<str>>,
}

/// The result descriptors an [`insert`](ShardedOrderingCache::insert)
/// records alongside the permutation itself.
#[derive(Debug, Clone, Copy)]
pub struct OrderingMeta<'a> {
    /// Envelope statistics of the ordering.
    pub stats: EnvelopeStats,
    /// Compression ratio when the quotient path ran (`None` = plain).
    pub compression_ratio: Option<f64>,
    /// Degradation reason to cache with the entry, if any.
    pub degraded: Option<&'a str>,
}

struct Entry {
    stats: EnvelopeStats,
    payload: Arc<EncodedPerm>,
    compression_ratio: Option<f64>,
    degraded: Option<Arc<str>>,
    /// Collision guard: a hit must also match the pattern's coarse shape.
    n: usize,
    adjacency_len: usize,
    bytes: usize,
    tick: u64,
}

/// Fixed per-entry bookkeeping overhead charged against the byte budget.
const ENTRY_OVERHEAD: usize = 160;

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    /// tick → key, oldest first; drives LRU eviction.
    lru: BTreeMap<u64, u64>,
    used_bytes: usize,
    next_tick: u64,
    hits: u64,
    misses: u64,
}

impl Shard {
    /// Inserts under `budget`, evicting LRU entries; returns evicted keys so
    /// the caller can delete their spill files outside any useful work.
    fn insert(&mut self, key: u64, entry: Entry, budget: usize) -> Vec<u64> {
        let mut evicted = Vec::new();
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.tick);
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + entry.bytes > budget {
            let (&oldest_tick, &oldest_key) = self
                .lru
                .iter()
                .next()
                .expect("used_bytes > 0 implies entries");
            self.lru.remove(&oldest_tick);
            let gone = self
                .entries
                .remove(&oldest_key)
                .expect("lru and entries agree");
            self.used_bytes -= gone.bytes;
            evicted.push(oldest_key);
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.lru.insert(tick, key);
        self.used_bytes += entry.bytes;
        self.entries.insert(key, Entry { tick, ..entry });
        evicted
    }
}

/// Live counters of one cache shard, as exposed through STATS.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Cached orderings in this shard.
    pub entries: usize,
    /// Bytes charged against this shard's budget.
    pub bytes: usize,
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups this shard could not answer.
    pub misses: u64,
}

/// A content-addressed ordering cache split into key-range shards with
/// per-shard mutexes, LRU lists and byte budgets, optionally spilled to a
/// directory so it survives restarts.
pub struct ShardedOrderingCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard (total budget / shard count).
    shard_budget: usize,
    dir: Option<PathBuf>,
    /// On-disk byte budget for the spill directory; `None` disables the
    /// accounting entirely (the directory then only shrinks via memory-side
    /// LRU evictions).
    dir_budget: Option<u64>,
    dir_state: Mutex<DirState>,
    /// Fault plane threaded into every spill write ([`crate::persist`]);
    /// disabled by default.
    faults: FaultPlane,
}

/// Oldest-first byte accounting of the spill directory, used only when a
/// directory budget is configured. Seeded from file modification times at
/// open; thereafter insertion order is authoritative.
#[derive(Default)]
struct DirState {
    /// key → spill file size in bytes.
    sizes: HashMap<u64, u64>,
    /// Keys oldest-first. May contain stale keys (already deleted through
    /// a memory-side eviction); they are skipped when popped.
    order: VecDeque<u64>,
    /// Sum of `sizes` values.
    total: u64,
}

impl ShardedOrderingCache {
    /// An in-memory cache of `shards` key-range shards sharing
    /// `budget_bytes` (each shard gets an equal slice). A budget of 0
    /// disables caching entirely. `shards` is clamped to at least 1.
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedOrderingCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / shards,
            dir: None,
            dir_budget: None,
            dir_state: Mutex::new(DirState::default()),
            faults: FaultPlane::disabled(),
        }
    }

    /// Installs the fault plane spill writes run under (chaos tests inject
    /// torn/corrupted writes through it). Call before sharing the cache.
    pub fn set_faults(&mut self, faults: FaultPlane) {
        self.faults = faults;
    }

    /// A persistent cache spilling to `dir`: the directory is created if
    /// missing and every valid spill file in it is loaded (under the byte
    /// budget — LRU applies during the load too, deleting files that no
    /// longer fit).
    pub fn open(
        budget_bytes: usize,
        shards: usize,
        dir: impl Into<PathBuf>,
    ) -> std::io::Result<Self> {
        Self::open_budgeted(budget_bytes, shards, dir, None)
    }

    /// Like [`ShardedOrderingCache::open`], additionally bounding the spill
    /// directory to `dir_budget` bytes: every insert that pushes the
    /// directory over the budget deletes the **oldest** spill files first
    /// (insertion order, seeded from file modification times at open) until
    /// it fits again. A deleted spill only costs a recomputation after the
    /// next restart; the in-memory entry stays live.
    pub fn open_budgeted(
        budget_bytes: usize,
        shards: usize,
        dir: impl Into<PathBuf>,
        dir_budget: Option<u64>,
    ) -> std::io::Result<Self> {
        let dir: PathBuf = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = Self::new(budget_bytes, shards);
        cache.dir = Some(dir.clone());
        cache.dir_budget = dir_budget;
        for e in persist::load_all(&dir) {
            cache.insert_loaded(e);
        }
        cache.seed_dir_state();
        cache.trim_dir_to_budget();
        Ok(cache)
    }

    /// Rebuilds the directory accounting from what is actually on disk,
    /// oldest modification time first (ties broken by key for determinism).
    fn seed_dir_state(&self) {
        let (Some(dir), Some(_)) = (&self.dir, self.dir_budget) else {
            return;
        };
        let Ok(rd) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, u64, u64)> = rd
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let p = e.path();
                if p.extension().and_then(|x| x.to_str()) != Some(persist::SPILL_EXT) {
                    return None;
                }
                let key = u64::from_str_radix(p.file_stem()?.to_str()?, 16).ok()?;
                let md = e.metadata().ok()?;
                Some((md.modified().ok()?, key, md.len()))
            })
            .collect();
        files.sort();
        let mut st = lock_unpoisoned(&self.dir_state);
        *st = DirState::default();
        for (_, key, size) in files {
            st.sizes.insert(key, size);
            st.order.push_back(key);
            st.total += size;
        }
    }

    /// Deletes oldest-first until the directory fits its budget.
    fn trim_dir_to_budget(&self) {
        let (Some(dir), Some(budget)) = (&self.dir, self.dir_budget) else {
            return;
        };
        let mut st = lock_unpoisoned(&self.dir_state);
        while st.total > budget {
            let Some(oldest) = st.order.pop_front() else {
                break;
            };
            if let Some(size) = st.sizes.remove(&oldest) {
                st.total -= size;
                persist::remove(dir, oldest);
            }
        }
    }

    /// Records a freshly written spill file and enforces the directory
    /// budget (no-op without one).
    fn note_spill(&self, key: u64) {
        let (Some(dir), Some(_)) = (&self.dir, self.dir_budget) else {
            return;
        };
        let size = std::fs::metadata(persist::spill_path(dir, key)).map_or(0, |m| m.len());
        {
            let mut st = lock_unpoisoned(&self.dir_state);
            if let Some(old) = st.sizes.insert(key, size) {
                st.total -= old;
                st.order.retain(|&k| k != key);
            }
            st.order.push_back(key);
            st.total += size;
        }
        self.trim_dir_to_budget();
    }

    /// Deletes a spill file and drops it from the directory accounting.
    fn remove_spill(&self, key: u64) {
        if let Some(dir) = &self.dir {
            persist::remove(dir, key);
            if self.dir_budget.is_some() {
                let mut st = lock_unpoisoned(&self.dir_state);
                if let Some(size) = st.sizes.remove(&key) {
                    st.total -= size;
                }
            }
        }
    }

    /// Bytes the directory accounting currently charges (0 without a
    /// directory budget).
    pub fn dir_bytes(&self) -> u64 {
        lock_unpoisoned(&self.dir_state).total
    }

    /// The spill directory, when persistence is on.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Key-range partition: shard `⌊key · N / 2⁶⁴⌋` — contiguous ranges,
    /// works for any shard count (not just powers of two).
    fn shard_of(&self, key: u64) -> usize {
        ((key as u128 * self.shards.len() as u128) >> 64) as usize
    }

    fn entry_from(
        stats: EnvelopeStats,
        payload: Arc<EncodedPerm>,
        compression_ratio: Option<f64>,
        degraded: Option<Arc<str>>,
        n: usize,
        adjacency_len: usize,
    ) -> Entry {
        let bytes =
            payload.heap_bytes() + ENTRY_OVERHEAD + degraded.as_ref().map_or(0, |r| r.len());
        Entry {
            stats,
            payload,
            compression_ratio,
            degraded,
            n,
            adjacency_len,
            bytes,
            tick: 0,
        }
    }

    /// Looks up the ordering for `(g, alg, compressed)`, refreshing its
    /// recency and counting the shard's hit/miss.
    pub fn get(&self, g: &SymmetricPattern, alg: Algorithm, compressed: bool) -> Option<CacheHit> {
        let key = pattern_key(g, alg, compressed);
        let mut shard = lock_unpoisoned(&self.shards[self.shard_of(key)]);
        let tick = shard.next_tick;
        let hit = match shard.entries.get_mut(&key) {
            Some(e) if e.n == g.n() && e.adjacency_len == g.adjacency_len() => {
                let old_tick = e.tick;
                e.tick = tick;
                let hit = CacheHit {
                    stats: e.stats,
                    payload: Arc::clone(&e.payload),
                    compression_ratio: e.compression_ratio,
                    degraded: e.degraded.clone(),
                };
                shard.lru.remove(&old_tick);
                shard.lru.insert(tick, key);
                shard.next_tick += 1;
                Some(hit)
            }
            // Absent, or a hash collision — treat as a miss either way.
            _ => None,
        };
        match hit.is_some() {
            true => shard.hits += 1,
            false => shard.misses += 1,
        }
        hit
    }

    /// Inserts an ordering, evicting LRU shard entries to respect the
    /// shard's byte budget; with persistence on, spills the entry and
    /// deletes evicted spill files. Orderings bigger than one shard's whole
    /// budget are not cached. Returns the shared payload so the caller can
    /// reuse the encoding for its own response.
    pub fn insert(
        &self,
        g: &SymmetricPattern,
        alg: Algorithm,
        compressed: bool,
        perm: &[usize],
        meta: OrderingMeta<'_>,
    ) -> Arc<EncodedPerm> {
        let OrderingMeta {
            stats,
            compression_ratio,
            degraded,
        } = meta;
        let payload = Arc::new(EncodedPerm::new(perm.to_vec()));
        let entry = Self::entry_from(
            stats,
            Arc::clone(&payload),
            compression_ratio,
            degraded.map(Arc::from),
            g.n(),
            g.adjacency_len(),
        );
        if entry.bytes > self.shard_budget {
            return payload;
        }
        let key = pattern_key(g, alg, compressed);
        if let Some(dir) = &self.dir {
            let _ = persist::save(
                dir,
                &PersistedEntry {
                    key,
                    n: g.n(),
                    adjacency_len: g.adjacency_len(),
                    stats,
                    compression_ratio,
                    degraded: degraded.map(str::to_string),
                    perm: perm.to_vec(),
                },
                &self.faults,
            );
            self.note_spill(key);
        }
        let evicted = {
            let mut shard = lock_unpoisoned(&self.shards[self.shard_of(key)]);
            shard.insert(key, entry, self.shard_budget)
        };
        for key in evicted {
            self.remove_spill(key);
        }
        payload
    }

    /// Inserts an entry that arrived already in [`PersistedEntry`] form —
    /// a replica pushed over the wire by a mesh peer, a warm-up transfer,
    /// or a drain handoff. Unlike the startup reload path (`insert_loaded`)
    /// the entry is **not** yet on this node's disk, so with persistence on
    /// it is spilled first exactly like a locally computed ordering.
    /// Returns whether the entry was *newly* stored: a key already cached
    /// keeps the existing copy (orderings are deterministic, so the copies
    /// are identical) and returns `false` — the same entry can legitimately
    /// arrive more than once (a startup WARM pull racing a REPLICATE push,
    /// a replayed hint after an anti-entropy repair) and duplicates must
    /// not inflate `peer_entries_received` or churn the LRU. An entry
    /// bigger than one shard's budget is dropped, matching
    /// [`insert`](Self::insert).
    pub fn insert_persisted(&self, e: PersistedEntry) -> bool {
        let entry = Self::entry_from(
            e.stats,
            Arc::new(EncodedPerm::new(e.perm.clone())),
            e.compression_ratio,
            e.degraded.as_deref().map(Arc::from),
            e.n,
            e.adjacency_len,
        );
        if entry.bytes > self.shard_budget {
            return false;
        }
        let key = e.key;
        if lock_unpoisoned(&self.shards[self.shard_of(key)])
            .entries
            .contains_key(&key)
        {
            return false;
        }
        if let Some(dir) = &self.dir {
            let _ = persist::save(dir, &e, &self.faults);
            self.note_spill(key);
        }
        let evicted = {
            let mut shard = lock_unpoisoned(&self.shards[self.shard_of(key)]);
            // Re-checked under the insertion lock: a concurrent delivery of
            // the same key may have won the race since the check above.
            if shard.entries.contains_key(&key) {
                return false;
            }
            shard.insert(key, entry, self.shard_budget)
        };
        for key in evicted {
            self.remove_spill(key);
        }
        true
    }

    /// Inserts an entry read back from disk (no re-spill; evictions during
    /// the load still delete their files so the directory stays bounded).
    fn insert_loaded(&self, e: PersistedEntry) {
        let entry = Self::entry_from(
            e.stats,
            Arc::new(EncodedPerm::new(e.perm)),
            e.compression_ratio,
            e.degraded.map(Arc::from),
            e.n,
            e.adjacency_len,
        );
        if entry.bytes > self.shard_budget {
            self.remove_spill(e.key);
            return;
        }
        let evicted = {
            let mut shard = lock_unpoisoned(&self.shards[self.shard_of(e.key)]);
            shard.insert(e.key, entry, self.shard_budget)
        };
        for key in evicted {
            self.remove_spill(key);
        }
    }

    /// Number of cached orderings across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against all shard budgets.
    pub fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).used_bytes)
            .sum()
    }

    /// The shard a key's range lands in — public so the mesh's
    /// anti-entropy exchange can bucket keys the same way the cache does.
    pub fn shard_index(&self, key: u64) -> usize {
        self.shard_of(key)
    }

    /// Every cached key, sorted ascending (deterministic across nodes for
    /// the same content — the basis of the anti-entropy digests).
    pub fn keys(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                lock_unpoisoned(s)
                    .entries
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Re-materializes a cached entry in [`PersistedEntry`] form so it can
    /// travel to a peer (warm-up transfer, anti-entropy repair) without
    /// touching the spill directory. Does not refresh recency or count a
    /// hit — peers pulling state must not distort this node's LRU.
    pub fn export(&self, key: u64) -> Option<PersistedEntry> {
        let shard = lock_unpoisoned(&self.shards[self.shard_of(key)]);
        let e = shard.entries.get(&key)?;
        Some(PersistedEntry {
            key,
            n: e.n,
            adjacency_len: e.adjacency_len,
            stats: e.stats,
            compression_ratio: e.compression_ratio,
            degraded: e.degraded.as_deref().map(str::to_string),
            perm: e.payload.order().to_vec(),
        })
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let s = lock_unpoisoned(s);
                ShardStats {
                    entries: s.entries.len(),
                    bytes: s.used_bytes,
                    hits: s.hits,
                    misses: s.misses,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> SymmetricPattern {
        SymmetricPattern::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
            .unwrap()
    }

    fn insert_ordering(cache: &ShardedOrderingCache, g: &SymmetricPattern, alg: Algorithm) {
        let o = se_order::order(g, alg).unwrap();
        cache.insert(
            g,
            alg,
            false,
            o.perm.order(),
            OrderingMeta {
                stats: o.stats,
                compression_ratio: None,
                degraded: None,
            },
        );
    }

    fn entry_cost(n: usize) -> usize {
        let g = path(n);
        let o = se_order::order(&g, Algorithm::Rcm).unwrap();
        Arc::new(EncodedPerm::new(o.perm.order().to_vec())).heap_bytes() + ENTRY_OVERHEAD
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.write_u64(0);
        assert_ne!(h.finish(), 0xcbf29ce484222325);
    }

    #[test]
    fn key_distinguishes_pattern_algorithm_and_compression() {
        let a = path(10);
        let b = path(11);
        assert_ne!(
            pattern_key(&a, Algorithm::Rcm, false),
            pattern_key(&b, Algorithm::Rcm, false)
        );
        assert_ne!(
            pattern_key(&a, Algorithm::Rcm, false),
            pattern_key(&a, Algorithm::Spectral, false)
        );
        assert_ne!(
            pattern_key(&a, Algorithm::Rcm, false),
            pattern_key(&a, Algorithm::Rcm, true)
        );
        assert_eq!(
            pattern_key(&a, Algorithm::Rcm, false),
            pattern_key(&path(10), Algorithm::Rcm, false)
        );
    }

    #[test]
    fn hit_returns_identical_ordering_with_both_encodings() {
        let g = path(40);
        let ordering = se_order::order(&g, Algorithm::Rcm).unwrap();
        for shards in [1, 2, 8] {
            let cache = ShardedOrderingCache::new(1 << 20, shards);
            assert!(cache.get(&g, Algorithm::Rcm, false).is_none());
            cache.insert(
                &g,
                Algorithm::Rcm,
                false,
                ordering.perm.order(),
                OrderingMeta {
                    stats: ordering.stats,
                    compression_ratio: None,
                    degraded: None,
                },
            );
            let hit = cache.get(&g, Algorithm::Rcm, false).expect("hit");
            assert!(hit.degraded.is_none());
            assert_eq!(hit.payload.order(), ordering.perm.order());
            assert_eq!(hit.stats, ordering.stats);
            assert_eq!(
                crate::frame::read_perm_frame(&mut hit.payload.frame()).unwrap(),
                ordering.perm.order()
            );
            assert_eq!(
                hit.payload.json().as_ref(),
                crate::frame::encode_perm_json(ordering.perm.order())
            );
            assert!(cache.get(&g, Algorithm::Spectral, false).is_none());
            assert!(
                cache.get(&g, Algorithm::Rcm, true).is_none(),
                "compressed is a different key"
            );
        }
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let per_entry = entry_cost(10);
        // Single shard so the budget math is exact.
        let cache = ShardedOrderingCache::new(3 * per_entry + per_entry / 2, 1);
        let graphs: Vec<_> = (20..30).map(path).collect();
        for g in &graphs {
            insert_ordering(&cache, g, Algorithm::Rcm);
        }
        assert!(cache.len() <= 3, "kept {}", cache.len());
        assert!(cache.used_bytes() <= 3 * per_entry + per_entry / 2);
        // The newest survive, the oldest are gone.
        assert!(cache.get(&graphs[9], Algorithm::Rcm, false).is_some());
        assert!(cache.get(&graphs[0], Algorithm::Rcm, false).is_none());
    }

    #[test]
    fn get_refreshes_recency() {
        let per_entry = entry_cost(13);
        let cache = ShardedOrderingCache::new(2 * per_entry + per_entry / 2, 1);
        let a = path(12);
        let b = path(13);
        let c = path(14);
        for g in [&a, &b] {
            insert_ordering(&cache, g, Algorithm::Rcm);
        }
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&a, Algorithm::Rcm, false).is_some());
        insert_ordering(&cache, &c, Algorithm::Rcm);
        assert!(cache.get(&a, Algorithm::Rcm, false).is_some());
        assert!(cache.get(&b, Algorithm::Rcm, false).is_none());
        assert!(cache.get(&c, Algorithm::Rcm, false).is_some());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let g = path(10);
        let cache = ShardedOrderingCache::new(0, 4);
        insert_ordering(&cache, &g, Algorithm::Rcm);
        assert!(cache.is_empty());
        assert!(cache.get(&g, Algorithm::Rcm, false).is_none());
    }

    #[test]
    fn shard_stats_count_hits_and_misses() {
        let cache = ShardedOrderingCache::new(1 << 20, 4);
        let g = path(25);
        assert!(cache.get(&g, Algorithm::Rcm, false).is_none());
        insert_ordering(&cache, &g, Algorithm::Rcm);
        assert!(cache.get(&g, Algorithm::Rcm, false).is_some());
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), 1);
        assert_eq!(
            stats.iter().map(|s| s.bytes).sum::<usize>(),
            cache.used_bytes()
        );
    }

    #[test]
    fn sharding_distributes_and_preserves_every_entry() {
        let cache = ShardedOrderingCache::new(8 << 20, 8);
        let graphs: Vec<_> = (10..42).map(path).collect();
        for g in &graphs {
            insert_ordering(&cache, g, Algorithm::Rcm);
        }
        assert_eq!(cache.len(), graphs.len());
        for g in &graphs {
            assert!(cache.get(g, Algorithm::Rcm, false).is_some());
        }
        let populated = cache.shard_stats().iter().filter(|s| s.entries > 0).count();
        assert!(populated > 1, "FNV keys must spread across shards");
    }

    #[test]
    fn persistence_save_load_evict_roundtrip() {
        let dir = std::env::temp_dir().join(format!("se-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = path(30);
        let ordering = se_order::order(&g, Algorithm::Rcm).unwrap();
        {
            let cache = ShardedOrderingCache::open(1 << 20, 2, &dir).unwrap();
            cache.insert(
                &g,
                Algorithm::Rcm,
                false,
                ordering.perm.order(),
                OrderingMeta {
                    stats: ordering.stats,
                    compression_ratio: None,
                    degraded: None,
                },
            );
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        }
        // A fresh cache over the same directory serves the hit.
        let reopened = ShardedOrderingCache::open(1 << 20, 2, &dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let hit = reopened
            .get(&g, Algorithm::Rcm, false)
            .expect("persisted hit");
        assert_eq!(hit.payload.order(), ordering.perm.order());
        assert_eq!(hit.stats, ordering.stats);
        // Shard count may change between runs without losing entries.
        let resharded = ShardedOrderingCache::open(1 << 20, 8, &dir).unwrap();
        assert!(resharded.get(&g, Algorithm::Rcm, false).is_some());
        // Eviction deletes the spill file: with room for only one entry,
        // inserting a second same-sized pattern evicts the first.
        let per_entry = entry_cost(30);
        let tiny = ShardedOrderingCache::open(per_entry + per_entry / 2, 1, &dir).unwrap();
        assert_eq!(tiny.len(), 1);
        let other = path(31);
        insert_ordering(&tiny, &other, Algorithm::Rcm);
        assert!(tiny.get(&g, Algorithm::Rcm, false).is_none(), "evicted");
        let remaining = persist::load_all(&dir);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].n, 31);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_reason_survives_hit_and_persistence_reopen() {
        let dir = std::env::temp_dir().join(format!("se-cache-deg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = path(24);
        let o = se_order::order(&g, Algorithm::Rcm).unwrap();
        {
            let cache = ShardedOrderingCache::open(1 << 20, 2, &dir).unwrap();
            cache.insert(
                &g,
                Algorithm::Rcm,
                false,
                o.perm.order(),
                OrderingMeta {
                    stats: o.stats,
                    compression_ratio: None,
                    degraded: Some("not_converged"),
                },
            );
            let hit = cache.get(&g, Algorithm::Rcm, false).expect("hit");
            assert_eq!(hit.degraded.as_deref(), Some("not_converged"));
        }
        let reopened = ShardedOrderingCache::open(1 << 20, 2, &dir).unwrap();
        let hit = reopened.get(&g, Algorithm::Rcm, false).expect("reloaded");
        assert_eq!(hit.degraded.as_deref(), Some("not_converged"));
        assert_eq!(hit.payload.order(), o.perm.order());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_survives_a_poisoned_shard_lock() {
        let cache = Arc::new(ShardedOrderingCache::new(1 << 20, 1));
        let g = path(22);
        insert_ordering(&cache, &g, Algorithm::Rcm);
        // Poison the only shard's mutex by panicking while holding it.
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("poison the shard");
        })
        .join();
        assert!(cache.shards[0].lock().is_err(), "lock must be poisoned");
        // The cache still serves hits and accepts inserts.
        assert!(cache.get(&g, Algorithm::Rcm, false).is_some());
        let other = path(23);
        insert_ordering(&cache, &other, Algorithm::Rcm);
        assert!(cache.get(&other, Algorithm::Rcm, false).is_some());
        assert_eq!(cache.len(), 2);
    }
}
