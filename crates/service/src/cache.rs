//! Content-addressed ordering cache.
//!
//! Orderings are pure functions of the sparsity pattern and the algorithm,
//! so the cache key is an FNV-1a hash of `(n, xadj, adjncy, algorithm)`.
//! Entries are evicted least-recently-used under a byte budget that counts
//! the dominant allocations (the two permutation arrays).

use se_order::{Algorithm, Ordering};
use sparsemat::pattern::SymmetricPattern;
use std::collections::{BTreeMap, HashMap};

/// 64-bit FNV-1a over a stream of `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs one word, byte by byte (little-endian).
    pub fn write_u64(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a pattern + algorithm into a cache key.
pub fn pattern_key(g: &SymmetricPattern, alg: Algorithm) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(g.n() as u64);
    for &x in g.xadj() {
        h.write_u64(x as u64);
    }
    for &a in g.adjncy() {
        h.write_u64(a as u64);
    }
    h.write_u64(alg as u64);
    h.finish()
}

struct Entry {
    ordering: Ordering,
    /// Collision guard: a hit must also match the pattern's coarse shape.
    n: usize,
    adjacency_len: usize,
    bytes: usize,
    tick: u64,
}

/// Bounded LRU cache mapping pattern hashes to orderings.
///
/// Not internally synchronized — the server wraps it in a `Mutex`.
pub struct OrderingCache {
    entries: HashMap<u64, Entry>,
    /// tick → key, oldest first; drives LRU eviction.
    lru: BTreeMap<u64, u64>,
    budget_bytes: usize,
    used_bytes: usize,
    next_tick: u64,
}

impl OrderingCache {
    /// A cache that holds at most `budget_bytes` of permutation data.
    /// A budget of 0 disables caching entirely.
    pub fn new(budget_bytes: usize) -> Self {
        OrderingCache {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            budget_bytes,
            used_bytes: 0,
            next_tick: 0,
        }
    }

    fn cost(ordering: &Ordering) -> usize {
        // new_to_old + old_to_new, plus fixed per-entry overhead.
        2 * ordering.perm.order().len() * std::mem::size_of::<usize>() + 128
    }

    /// Looks up the ordering for `(g, alg)`, refreshing its recency.
    pub fn get(&mut self, g: &SymmetricPattern, alg: Algorithm) -> Option<Ordering> {
        let key = pattern_key(g, alg);
        let tick = self.next_tick;
        let entry = self.entries.get_mut(&key)?;
        if entry.n != g.n() || entry.adjacency_len != g.adjacency_len() {
            return None; // hash collision — treat as a miss
        }
        self.lru.remove(&entry.tick);
        entry.tick = tick;
        self.lru.insert(tick, key);
        self.next_tick += 1;
        Some(entry.ordering.clone())
    }

    /// Inserts an ordering, evicting LRU entries to respect the budget.
    /// Orderings bigger than the whole budget are not cached.
    pub fn insert(&mut self, g: &SymmetricPattern, alg: Algorithm, ordering: &Ordering) {
        let bytes = Self::cost(ordering);
        if bytes > self.budget_bytes {
            return;
        }
        let key = pattern_key(g, alg);
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.tick);
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.budget_bytes {
            let (&oldest_tick, &oldest_key) = self
                .lru
                .iter()
                .next()
                .expect("used_bytes > 0 implies entries");
            self.lru.remove(&oldest_tick);
            let evicted = self
                .entries
                .remove(&oldest_key)
                .expect("lru and entries agree");
            self.used_bytes -= evicted.bytes;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.lru.insert(tick, key);
        self.used_bytes += bytes;
        self.entries.insert(
            key,
            Entry {
                ordering: ordering.clone(),
                n: g.n(),
                adjacency_len: g.adjacency_len(),
                bytes,
                tick,
            },
        );
    }

    /// Number of cached orderings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> SymmetricPattern {
        SymmetricPattern::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.write_u64(0);
        assert_ne!(h.finish(), 0xcbf29ce484222325);
    }

    #[test]
    fn key_distinguishes_pattern_and_algorithm() {
        let a = path(10);
        let b = path(11);
        assert_ne!(
            pattern_key(&a, Algorithm::Rcm),
            pattern_key(&b, Algorithm::Rcm)
        );
        assert_ne!(
            pattern_key(&a, Algorithm::Rcm),
            pattern_key(&a, Algorithm::Spectral)
        );
        assert_eq!(
            pattern_key(&a, Algorithm::Rcm),
            pattern_key(&path(10), Algorithm::Rcm)
        );
    }

    #[test]
    fn hit_returns_identical_ordering() {
        let g = path(40);
        let ordering = se_order::order(&g, Algorithm::Rcm).unwrap();
        let mut cache = OrderingCache::new(1 << 20);
        assert!(cache.get(&g, Algorithm::Rcm).is_none());
        cache.insert(&g, Algorithm::Rcm, &ordering);
        let hit = cache.get(&g, Algorithm::Rcm).expect("hit");
        assert_eq!(hit.perm.order(), ordering.perm.order());
        assert_eq!(hit.stats, ordering.stats);
        assert!(cache.get(&g, Algorithm::Spectral).is_none());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let ordering = se_order::order(&path(10), Algorithm::Rcm).unwrap();
        let per_entry = OrderingCache::cost(&ordering);
        let mut cache = OrderingCache::new(3 * per_entry);
        let graphs: Vec<_> = (20..30).map(path).collect();
        for g in &graphs {
            let o = se_order::order(g, Algorithm::Rcm).unwrap();
            cache.insert(g, Algorithm::Rcm, &o);
        }
        assert!(
            cache.len() <= 3,
            "budget holds 3 entries, kept {}",
            cache.len()
        );
        assert!(cache.used_bytes() <= 3 * per_entry);
        // The newest survive, the oldest are gone.
        assert!(cache.get(&graphs[9], Algorithm::Rcm).is_some());
        assert!(cache.get(&graphs[0], Algorithm::Rcm).is_none());
    }

    #[test]
    fn get_refreshes_recency() {
        let ordering = se_order::order(&path(10), Algorithm::Rcm).unwrap();
        let per_entry = OrderingCache::cost(&ordering);
        let mut cache = OrderingCache::new(2 * per_entry + per_entry / 2);
        let a = path(12);
        let b = path(13);
        let c = path(14);
        for g in [&a, &b] {
            let o = se_order::order(g, Algorithm::Rcm).unwrap();
            cache.insert(g, Algorithm::Rcm, &o);
        }
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&a, Algorithm::Rcm).is_some());
        let o = se_order::order(&c, Algorithm::Rcm).unwrap();
        cache.insert(&c, Algorithm::Rcm, &o);
        assert!(cache.get(&a, Algorithm::Rcm).is_some());
        assert!(cache.get(&b, Algorithm::Rcm).is_none());
        assert!(cache.get(&c, Algorithm::Rcm).is_some());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let g = path(10);
        let o = se_order::order(&g, Algorithm::Rcm).unwrap();
        let mut cache = OrderingCache::new(0);
        cache.insert(&g, Algorithm::Rcm, &o);
        assert!(cache.is_empty());
        assert!(cache.get(&g, Algorithm::Rcm).is_none());
    }
}
