//! `se-service` — `spectral-orderd`, a persistent ordering service.
//!
//! Computing an envelope-reducing ordering is expensive relative to using
//! one, and in iterative workflows (mesh refinement loops, repeated solves,
//! parameter sweeps) the same sparsity pattern is ordered again and again.
//! This crate turns the ordering pipeline into a small daemon:
//!
//! * **std-only TCP server** ([`server::serve`]) speaking newline-delimited
//!   JSON ([`proto`]) — commands `ORDER`, `BATCH`, `STATS`, `SHUTDOWN`;
//! * **content-addressed cache** ([`cache`]): orderings are pure functions
//!   of the sparsity pattern + algorithm, so results are keyed by an FNV-1a
//!   hash of the CSR structure and reused across requests (bounded LRU);
//! * **bounded worker pool** ([`pool`]) with explicit backpressure — when
//!   the queue is full the client gets a retriable `queue full` error
//!   instead of unbounded latency — and graceful drain on shutdown;
//! * **live metrics** ([`metrics`]): atomic counters and per-algorithm
//!   power-of-two latency histograms, exposed via `STATS`;
//! * **blocking client** ([`client::Client`]) used by `spectral-order
//!   client` and the test harness.
//!
//! Everything is built on `std` alone (`std::net`, threads, channels); the
//! JSON layer ([`json`]) is hand-rolled so the service adds no external
//! dependencies to the workspace.

pub mod cache;
pub mod client;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use server::{serve, Config, ServerHandle};
