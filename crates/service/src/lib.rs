//! `se-service` — `spectral-orderd`, a persistent ordering service.
//!
//! Computing an envelope-reducing ordering is expensive relative to using
//! one, and in iterative workflows (mesh refinement loops, repeated solves,
//! parameter sweeps) the same sparsity pattern is ordered again and again.
//! This crate turns the ordering pipeline into a small daemon, layered as
//! **transport / session / engine**:
//!
//! * **transport** — by default the `se-reactor` `poll(2)` event loop:
//!   a handful of threads multiplex every connection, enforce the
//!   connection limit (excess connections get one retriable `server
//!   busy` line), and move line/frame bytes with backpressure-aware
//!   write queues. The legacy thread-per-connection loop ([`transport`])
//!   remains behind `Config::legacy_transport`;
//! * **session** — the per-connection protocol state machine
//!   ([`rsession`] on the reactor, [`session`] on the legacy loop):
//!   decode a request line, dispatch, encode the response under the
//!   connection's negotiated frame mode (`HELLO` opts into binary
//!   permutation frames, [`frame`]) and protocol level (v2 pipelines
//!   id-tagged out-of-order responses and streams PROGRESS frames);
//! * **engine** ([`engine`]) — the compute core: a bounded worker pool
//!   ([`pool`]) with explicit backpressure and graceful drain, live metrics
//!   ([`metrics`]), and the sharded content-addressed ordering cache
//!   ([`cache`]) storing pre-encoded responses, optionally spilled to disk
//!   ([`persist`]) so a restarted server keeps serving hits;
//! * [`server`] is the thin composition root wiring the three together, and
//!   [`client::Client`] the blocking client used by `spectral-order client`
//!   and the test harness — serially ([`Client::order`]) or pipelined over
//!   protocol v2 ([`Client::order_many`], bounded in-flight window,
//!   optional progress callback, [`ClientPool`] for connection reuse).
//!
//! The wire protocol ([`proto`]) is newline-delimited JSON — commands
//! `HELLO`, `ORDER`, `BATCH`, `STATS`, `METRICS`, `CANCEL`, `SHUTDOWN` —
//! with optional length-prefixed binary permutation frames after HELLO
//! negotiation. Responses are bit-identical in content across both frame
//! modes and any shard count. `ORDER` accepts `"trace":true` to return the
//! hierarchical span tree of the computation (`se_trace`), `METRICS`
//! exposes the counters and per-stage latency histograms as Prometheus
//! text, and `CANCEL` revokes a queued or *running* request by
//! client-assigned id (running solves observe the flipped [`Budget`] at
//! their next iteration boundary). Everything is built on `std` alone
//! (`std::net`, threads, channels); the JSON layer ([`json`]) is
//! hand-rolled so the service adds no external dependencies to the
//! workspace.
//!
//! # Robustness
//!
//! The service degrades instead of failing wherever it can:
//!
//! * every ORDER runs under a cooperative deadline [`Budget`] derived from
//!   its timeout, checked at solver iteration boundaries;
//! * when the spectral pipeline cannot finish (non-convergence, exhausted
//!   budget, injected fault), the engine walks a degradation ladder —
//!   spectral → Lanczos-only → RCM — and still returns a valid
//!   permutation, marked `"degraded"` with a machine-readable reason and
//!   counted in `se_degraded_orders_total{reason=...}`;
//! * a deterministic fault-injection plane ([`FaultPlane`], disabled by
//!   default and bit-transparent when disabled) drives the chaos test
//!   suite through the full stack, including spill-file corruption and
//!   torn writes;
//! * per-client-IP token-bucket rate limiting ([`transport::RateLimiter`],
//!   `Config::rate_limit`), socket I/O timeouts against slow-loris clients
//!   (`Config::io_timeout_ms`), and a decorrelated-jitter client retry
//!   helper ([`client::order_with_retry`]) round out the edges.
//!
//! # Mesh
//!
//! Several daemons can pool their caches into one keyspace: started with
//! `--peers host:port,...`, each node places the peer addresses plus its
//! own bound address on a consistent-hash ring with virtual nodes
//! ([`ring`]) over the cache key space. An ORDER that misses locally for
//! a key another node owns is forwarded to that owner over the
//! protocol-v2 binary-frame client and the response relayed unchanged
//! ([`mesh`]); owners push freshly computed entries to their
//! `--replicas − 1` ring successors (spill-file byte layout over a
//! `REPLICATE` command) for read fan-out, and a draining node ships its
//! spill files to the keys' new owners on SHUTDOWN. When a peer is
//! unreachable the node computes the answer itself — a mesh member never
//! returns a hard error because of another member.
//!
//! The mesh is *self-healing*: members heartbeat each other with
//! `PING`/`ACK` over the existing peer connections and run each peer
//! through a suspicion state machine ([`membership`],
//! `Alive → Suspect → Dead → Rejoining`), routing around suspect and dead
//! owners to the next live ring successor. A (re)starting node announces
//! itself with `JOIN`, is admitted by any live member, and warms its key
//! range from its predecessors (`WARM`, bulk entry transfer in the spill
//! byte layout). Replica pushes that cannot be delivered park in a
//! bounded on-disk hint log ([`hints`]) and replay when the target
//! returns, and a periodic anti-entropy digest exchange (`SYNC`, per-shard
//! FNV digests) repairs replicas that diverged anyway. Peer states,
//! transitions, hint depth, and repair counts are all visible in `STATS`
//! and `METRICS`.

pub mod cache;
pub mod client;
pub mod engine;
pub mod frame;
pub mod hints;
pub mod json;
pub mod membership;
pub mod mesh;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod proto;
pub mod ring;
pub mod rsession;
pub mod server;
pub mod session;
pub mod transport;

pub use client::{order_with_retry, Client, ClientError, ClientPool, RetryPolicy};
pub use frame::FrameMode;
pub use ring::HashRing;
pub use rsession::PROTO_VERSION;
pub use se_faults::{sites, Budget, FaultPlane};
pub use server::{serve, Config, ServerHandle};
pub use transport::RateLimiter;
