//! Spill-to-disk persistence for the sharded ordering cache.
//!
//! Each cache entry is one file `<key as 16 hex digits>.soc` under the
//! cache directory, written atomically (temp file + rename) so a crash
//! mid-write never leaves a half-entry behind. The layout reuses the wire
//! frame for the permutation, prefixed by a fixed header (all integers
//! little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SOCF"
//! 4       1     version (1)
//! 5       3     reserved (0)
//! 8       8     u64 cache key (FNV-1a of pattern+algorithm+compressed)
//! 16      8     u64 n (collision guard)
//! 24      8     u64 adjacency length (collision guard)
//! 32      8     u64 flags: bit 0 = compression ratio present,
//!               bit 1 = degradation reason appended after the perm frame
//! 40      8     f64 compression ratio bits (0 when absent)
//! 48      40    EnvelopeStats: envelope_size, envelope_work, bandwidth,
//!               one_sum, two_sum_sq (5 × u64)
//! 88      …     permutation as one binary perm frame (see [`crate::frame`])
//! …       4+…   when flags bit 1: u32 length + UTF-8 degradation reason
//! ```
//!
//! A file that fails any validation (magic, version, frame integrity,
//! key/filename mismatch) is skipped at load time — a corrupt spill file
//! costs a recomputation, never a wrong answer. [`save`] threads the
//! process's [`FaultPlane`] through the write so chaos tests can inject
//! bit flips ([`se_faults::sites::PERSIST_CORRUPT`]) and torn writes
//! ([`se_faults::sites::PERSIST_TORN`]) at the exact byte layer where real
//! disk faults would land.

use crate::frame::{encode_perm_frame, read_perm_frame};
use se_faults::{sites, FaultPlane};
use sparsemat::envelope::EnvelopeStats;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Spill-file magic: "Spectral Order Cache File".
pub const SPILL_MAGIC: [u8; 4] = *b"SOCF";

/// Spill-file format version.
pub const SPILL_VERSION: u8 = 1;

/// Extension of spill files inside the cache directory.
pub const SPILL_EXT: &str = "soc";

/// One cache entry as read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedEntry {
    /// The content-addressed cache key.
    pub key: u64,
    /// Matrix order (collision guard).
    pub n: usize,
    /// Adjacency length of the pattern (collision guard).
    pub adjacency_len: usize,
    /// Envelope statistics of the ordering.
    pub stats: EnvelopeStats,
    /// Supervariable compression ratio, when the entry was compressed.
    pub compression_ratio: Option<f64>,
    /// Machine-readable degradation reason, when the cached ordering came
    /// from a fallback rung of the degradation ladder.
    pub degraded: Option<String>,
    /// The permutation, new position → old index.
    pub perm: Vec<usize>,
}

/// Path of the spill file for `key` inside `dir`.
pub fn spill_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.{SPILL_EXT}"))
}

/// Writes one entry atomically (temp file + rename). Fsync is deliberately
/// skipped: losing a spill on power failure costs one recomputation.
///
/// `faults` injects byte-level failures between encoding and the write:
/// [`sites::PERSIST_CORRUPT`] flips bits in the encoded buffer,
/// [`sites::PERSIST_TORN`] truncates the write to a PRNG-chosen shorter
/// length. Both produce files that [`load`] rejects (or, for flips in
/// undetectable padding, returns verbatim) — never a panic.
pub fn save(dir: &Path, entry: &PersistedEntry, faults: &FaultPlane) -> io::Result<()> {
    let mut buf = encode_entry(entry);
    faults.corrupt(sites::PERSIST_CORRUPT, &mut buf);
    let write_len = faults
        .torn_len(sites::PERSIST_TORN, buf.len())
        .unwrap_or(buf.len());

    let final_path = spill_path(dir, entry.key);
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&buf[..write_len])?;
    }
    std::fs::rename(&tmp_path, &final_path)
}

/// Encodes one entry in the spill-file layout (see the module docs). This
/// is the exact byte stream [`save`] writes to disk and also the payload a
/// mesh peer ships over the wire for replication and drain handoff — one
/// format, validated the same way by [`load_from`] on both paths.
pub fn encode_entry(entry: &PersistedEntry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(88 + 16 + entry.perm.len() * 8);
    buf.extend_from_slice(&SPILL_MAGIC);
    buf.push(SPILL_VERSION);
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(&entry.key.to_le_bytes());
    buf.extend_from_slice(&(entry.n as u64).to_le_bytes());
    buf.extend_from_slice(&(entry.adjacency_len as u64).to_le_bytes());
    let flags: u64 =
        entry.compression_ratio.is_some() as u64 | (entry.degraded.is_some() as u64) << 1;
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.extend_from_slice(
        &entry
            .compression_ratio
            .unwrap_or(0.0)
            .to_bits()
            .to_le_bytes(),
    );
    for v in [
        entry.stats.envelope_size,
        entry.stats.envelope_work,
        entry.stats.bandwidth,
        entry.stats.one_sum,
        entry.stats.two_sum_sq,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&encode_perm_frame(&entry.perm));
    if let Some(reason) = &entry.degraded {
        buf.extend_from_slice(&(reason.len() as u32).to_le_bytes());
        buf.extend_from_slice(reason.as_bytes());
    }
    buf
}

/// Deletes the spill file for `key` (missing files are fine — eviction may
/// race a never-spilled entry).
pub fn remove(dir: &Path, key: u64) {
    let _ = std::fs::remove_file(spill_path(dir, key));
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad spill file: {msg}"))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Parses one spill file.
pub fn load(path: &Path) -> io::Result<PersistedEntry> {
    load_from(&mut io::BufReader::new(std::fs::File::open(path)?))
}

/// Parses one entry in the spill-file layout from any reader — a spill
/// file on disk ([`load`]) or the bytes of a mesh `REPLICATE` request.
/// Every validation (magic, version, permutation-length collision guard,
/// reason-length sanity) applies identically on both paths.
pub fn load_from(mut f: impl Read) -> io::Result<PersistedEntry> {
    let mut head = [0u8; 8];
    f.read_exact(&mut head)?;
    if head[0..4] != SPILL_MAGIC {
        return Err(bad("wrong magic"));
    }
    if head[4] != SPILL_VERSION {
        return Err(bad("unsupported version"));
    }
    let key = read_u64(&mut f)?;
    let n = read_u64(&mut f)? as usize;
    let adjacency_len = read_u64(&mut f)? as usize;
    let flags = read_u64(&mut f)?;
    let ratio_bits = read_u64(&mut f)?;
    let stats = EnvelopeStats {
        envelope_size: read_u64(&mut f)?,
        envelope_work: read_u64(&mut f)?,
        bandwidth: read_u64(&mut f)?,
        one_sum: read_u64(&mut f)?,
        two_sum_sq: read_u64(&mut f)?,
    };
    let perm = read_perm_frame(&mut f)?;
    if perm.len() != n {
        return Err(bad("permutation length disagrees with header"));
    }
    let degraded = if flags & 2 != 0 {
        let mut len_bytes = [0u8; 4];
        f.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        // A reason is a short token like `not_converged` or `fault:<site>`;
        // anything huge is a corrupt length word, not a real reason.
        if len > 4096 {
            return Err(bad("oversized degradation reason"));
        }
        let mut reason = vec![0u8; len];
        f.read_exact(&mut reason)?;
        Some(String::from_utf8(reason).map_err(|_| bad("degradation reason is not UTF-8"))?)
    } else {
        None
    };
    Ok(PersistedEntry {
        key,
        n,
        adjacency_len,
        stats,
        compression_ratio: (flags & 1 != 0).then(|| f64::from_bits(ratio_bits)),
        degraded,
        perm,
    })
}

/// Loads every valid spill file in `dir`, sorted by key for determinism.
/// Unreadable or corrupt files are skipped (and left in place for
/// inspection); a missing directory is an empty cache.
pub fn load_all(dir: &Path) -> Vec<PersistedEntry> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut entries: Vec<PersistedEntry> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(SPILL_EXT))
        .filter_map(|p| {
            let entry = load(&p).ok()?;
            // The filename is the key; a mismatch means a renamed/corrupt file.
            (spill_path(dir, entry.key) == p).then_some(entry)
        })
        .collect();
    entries.sort_by_key(|e| e.key);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: u64, ratio: Option<f64>) -> PersistedEntry {
        PersistedEntry {
            key,
            n: 4,
            adjacency_len: 6,
            stats: EnvelopeStats {
                envelope_size: 9,
                envelope_work: 27,
                bandwidth: 3,
                one_sum: 12,
                two_sum_sq: 50,
            },
            compression_ratio: ratio,
            degraded: None,
            perm: vec![2, 0, 3, 1],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("se-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let clean = FaultPlane::disabled();
        let a = sample(0xABCD, None);
        let b = sample(0x1234, Some(2.5));
        save(&dir, &a, &clean).unwrap();
        save(&dir, &b, &clean).unwrap();
        assert_eq!(load(&spill_path(&dir, 0xABCD)).unwrap(), a);
        let all = load_all(&dir);
        assert_eq!(all, vec![b.clone(), a.clone()], "sorted by key");
        remove(&dir, 0xABCD);
        assert_eq!(load_all(&dir), vec![b]);
        // Corrupt files are skipped, not fatal.
        std::fs::write(spill_path(&dir, 0x9999), b"garbage").unwrap();
        assert_eq!(load_all(&dir).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degradation_reason_roundtrips() {
        let dir = temp_dir("degraded");
        let mut e = sample(0x77, Some(1.5));
        e.degraded = Some("not_converged".to_string());
        save(&dir, &e, &FaultPlane::disabled()).unwrap();
        assert_eq!(load(&spill_path(&dir, 0x77)).unwrap(), e);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_is_rejected_at_load() {
        let dir = temp_dir("torn");
        let faults = FaultPlane::seeded(42);
        faults.arm(sites::PERSIST_TORN);
        let mut e = sample(0x55, None);
        e.degraded = Some("deadline".to_string());
        save(&dir, &e, &faults).unwrap();
        assert_eq!(faults.fired(sites::PERSIST_TORN), 1);
        // The file is strictly shorter than the full encoding, so some
        // read_exact hits EOF — a clean error, never a panic.
        assert!(load(&spill_path(&dir, 0x55)).is_err());
        assert!(load_all(&dir).is_empty(), "torn spill files are skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_spill_never_panics_and_is_usually_rejected() {
        // Drive many corrupted writes through the fault plane: load must
        // never panic, and a file it does accept must carry a plausible
        // permutation (the frame layer validates structure).
        let dir = temp_dir("corrupt");
        let faults = FaultPlane::seeded(1234);
        faults.arm(sites::PERSIST_CORRUPT);
        for round in 0..64u64 {
            let e = sample(round, (round % 2 == 0).then_some(2.0));
            save(&dir, &e, &faults).unwrap();
            if let Ok(back) = load(&spill_path(&dir, round)) {
                assert_eq!(back.perm.len(), back.n, "accepted file is coherent");
            }
        }
        // load_all applies the same validation plus the filename check.
        for e in load_all(&dir) {
            assert_eq!(e.perm.len(), e.n);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_truncations_of_a_valid_file_all_fail_cleanly() {
        let dir = temp_dir("trunc");
        let mut e = sample(0x31, Some(3.0));
        e.degraded = Some("fault:graph.coarsen.stagnate".to_string());
        save(&dir, &e, &FaultPlane::disabled()).unwrap();
        let full = std::fs::read(spill_path(&dir, 0x31)).unwrap();
        let cut_path = spill_path(&dir, 0x32);
        for cut in 0..full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            assert!(load(&cut_path).is_err(), "prefix of {cut} bytes accepted");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
