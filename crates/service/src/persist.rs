//! Spill-to-disk persistence for the sharded ordering cache.
//!
//! Each cache entry is one file `<key as 16 hex digits>.soc` under the
//! cache directory, written atomically (temp file + rename) so a crash
//! mid-write never leaves a half-entry behind. The layout reuses the wire
//! frame for the permutation, prefixed by a fixed header (all integers
//! little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SOCF"
//! 4       1     version (1)
//! 5       3     reserved (0)
//! 8       8     u64 cache key (FNV-1a of pattern+algorithm+compressed)
//! 16      8     u64 n (collision guard)
//! 24      8     u64 adjacency length (collision guard)
//! 32      8     u64 flags: bit 0 = compression ratio present
//! 40      8     f64 compression ratio bits (0 when absent)
//! 48      40    EnvelopeStats: envelope_size, envelope_work, bandwidth,
//!               one_sum, two_sum_sq (5 × u64)
//! 88      …     permutation as one binary perm frame (see [`crate::frame`])
//! ```
//!
//! A file that fails any validation (magic, version, frame integrity,
//! key/filename mismatch) is skipped at load time — a corrupt spill file
//! costs a recomputation, never a wrong answer.

use crate::frame::{encode_perm_frame, read_perm_frame};
use sparsemat::envelope::EnvelopeStats;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Spill-file magic: "Spectral Order Cache File".
pub const SPILL_MAGIC: [u8; 4] = *b"SOCF";

/// Spill-file format version.
pub const SPILL_VERSION: u8 = 1;

/// Extension of spill files inside the cache directory.
pub const SPILL_EXT: &str = "soc";

/// One cache entry as read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedEntry {
    /// The content-addressed cache key.
    pub key: u64,
    /// Matrix order (collision guard).
    pub n: usize,
    /// Adjacency length of the pattern (collision guard).
    pub adjacency_len: usize,
    /// Envelope statistics of the ordering.
    pub stats: EnvelopeStats,
    /// Supervariable compression ratio, when the entry was compressed.
    pub compression_ratio: Option<f64>,
    /// The permutation, new position → old index.
    pub perm: Vec<usize>,
}

/// Path of the spill file for `key` inside `dir`.
pub fn spill_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.{SPILL_EXT}"))
}

/// Writes one entry atomically (temp file + rename). Fsync is deliberately
/// skipped: losing a spill on power failure costs one recomputation.
pub fn save(dir: &Path, entry: &PersistedEntry) -> io::Result<()> {
    let mut buf = Vec::with_capacity(88 + 16 + entry.perm.len() * 8);
    buf.extend_from_slice(&SPILL_MAGIC);
    buf.push(SPILL_VERSION);
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(&entry.key.to_le_bytes());
    buf.extend_from_slice(&(entry.n as u64).to_le_bytes());
    buf.extend_from_slice(&(entry.adjacency_len as u64).to_le_bytes());
    let flags: u64 = entry.compression_ratio.is_some() as u64;
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.extend_from_slice(
        &entry
            .compression_ratio
            .unwrap_or(0.0)
            .to_bits()
            .to_le_bytes(),
    );
    for v in [
        entry.stats.envelope_size,
        entry.stats.envelope_work,
        entry.stats.bandwidth,
        entry.stats.one_sum,
        entry.stats.two_sum_sq,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&encode_perm_frame(&entry.perm));

    let final_path = spill_path(dir, entry.key);
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&buf)?;
    }
    std::fs::rename(&tmp_path, &final_path)
}

/// Deletes the spill file for `key` (missing files are fine — eviction may
/// race a never-spilled entry).
pub fn remove(dir: &Path, key: u64) {
    let _ = std::fs::remove_file(spill_path(dir, key));
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad spill file: {msg}"))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Parses one spill file.
pub fn load(path: &Path) -> io::Result<PersistedEntry> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut head = [0u8; 8];
    f.read_exact(&mut head)?;
    if head[0..4] != SPILL_MAGIC {
        return Err(bad("wrong magic"));
    }
    if head[4] != SPILL_VERSION {
        return Err(bad("unsupported version"));
    }
    let key = read_u64(&mut f)?;
    let n = read_u64(&mut f)? as usize;
    let adjacency_len = read_u64(&mut f)? as usize;
    let flags = read_u64(&mut f)?;
    let ratio_bits = read_u64(&mut f)?;
    let stats = EnvelopeStats {
        envelope_size: read_u64(&mut f)?,
        envelope_work: read_u64(&mut f)?,
        bandwidth: read_u64(&mut f)?,
        one_sum: read_u64(&mut f)?,
        two_sum_sq: read_u64(&mut f)?,
    };
    let perm = read_perm_frame(&mut f)?;
    if perm.len() != n {
        return Err(bad("permutation length disagrees with header"));
    }
    Ok(PersistedEntry {
        key,
        n,
        adjacency_len,
        stats,
        compression_ratio: (flags & 1 != 0).then(|| f64::from_bits(ratio_bits)),
        perm,
    })
}

/// Loads every valid spill file in `dir`, sorted by key for determinism.
/// Unreadable or corrupt files are skipped (and left in place for
/// inspection); a missing directory is an empty cache.
pub fn load_all(dir: &Path) -> Vec<PersistedEntry> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut entries: Vec<PersistedEntry> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(SPILL_EXT))
        .filter_map(|p| {
            let entry = load(&p).ok()?;
            // The filename is the key; a mismatch means a renamed/corrupt file.
            (spill_path(dir, entry.key) == p).then_some(entry)
        })
        .collect();
    entries.sort_by_key(|e| e.key);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: u64, ratio: Option<f64>) -> PersistedEntry {
        PersistedEntry {
            key,
            n: 4,
            adjacency_len: 6,
            stats: EnvelopeStats {
                envelope_size: 9,
                envelope_work: 27,
                bandwidth: 3,
                one_sum: 12,
                two_sum_sq: 50,
            },
            compression_ratio: ratio,
            perm: vec![2, 0, 3, 1],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("se-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = sample(0xABCD, None);
        let b = sample(0x1234, Some(2.5));
        save(&dir, &a).unwrap();
        save(&dir, &b).unwrap();
        assert_eq!(load(&spill_path(&dir, 0xABCD)).unwrap(), a);
        let all = load_all(&dir);
        assert_eq!(all, vec![b.clone(), a.clone()], "sorted by key");
        remove(&dir, 0xABCD);
        assert_eq!(load_all(&dir), vec![b]);
        // Corrupt files are skipped, not fatal.
        std::fs::write(spill_path(&dir, 0x9999), b"garbage").unwrap();
        assert_eq!(load_all(&dir).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
