//! Live service metrics: atomic counters plus per-algorithm latency
//! histograms, snapshotted as JSON by the STATS command.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two microsecond buckets: bucket `i` counts latencies
/// in `[2^i, 2^(i+1))` µs, with bucket 0 covering `[0, 2)` and the last
/// bucket open-ended. 30 buckets reach ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// A latency histogram with power-of-two µs buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q <= 1) in µs: the
    /// upper edge of the bucket containing the quantile rank.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_micros
    }

    fn to_json(&self) -> Json {
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        };
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("mean_us", Json::Num(mean)),
            ("p50_us", Json::Num(self.quantile_micros(0.50) as f64)),
            ("p99_us", Json::Num(self.quantile_micros(0.99) as f64)),
            ("max_us", Json::Num(self.max_micros as f64)),
        ])
    }
}

/// All counters the service exposes through STATS.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request lines received (any command).
    pub requests: AtomicU64,
    /// Individual ORDER executions (batch members count individually).
    pub orders: AtomicU64,
    /// BATCH commands received.
    pub batches: AtomicU64,
    /// Orderings served from the cache.
    pub cache_hits: AtomicU64,
    /// Orderings computed because the cache missed.
    pub cache_misses: AtomicU64,
    /// Submissions rejected with queue-full backpressure.
    pub queue_rejections: AtomicU64,
    /// Requests that exceeded their wall-clock timeout.
    pub timeouts: AtomicU64,
    /// Requests that failed (parse errors, bad input, I/O).
    pub errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections turned away at the limit with a retriable busy error.
    pub busy_rejections: AtomicU64,
    /// name() → latency histogram, one per algorithm seen.
    latency: Mutex<Vec<(String, Histogram)>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed ordering's latency under its algorithm name.
    pub fn record_latency(&self, alg_name: &str, micros: u64) {
        let mut table = self.latency.lock().unwrap();
        match table.iter_mut().find(|(name, _)| name == alg_name) {
            Some((_, h)) => h.record(micros),
            None => {
                let mut h = Histogram::default();
                h.record(micros);
                table.push((alg_name.to_string(), h));
            }
        }
    }

    /// Total recorded latency observations for `alg_name`.
    pub fn latency_count(&self, alg_name: &str) -> u64 {
        self.latency
            .lock()
            .unwrap()
            .iter()
            .find(|(name, _)| name == alg_name)
            .map_or(0, |(_, h)| h.count())
    }

    /// Snapshot as the STATS JSON object. `queue_depth`/`active` come from
    /// the pool; `cache` holds the sharded cache's per-shard counters. The
    /// legacy `cached_orderings` total stays at the top level; the `cache`
    /// object adds `shards` (an array, one object per shard, in shard
    /// order), total bytes, and whether persistence is on.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        active: usize,
        cache: &[crate::cache::ShardStats],
        persistent: bool,
    ) -> Json {
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        let table = self.latency.lock().unwrap();
        let mut latency: Vec<(String, Json)> = table
            .iter()
            .map(|(name, h)| (name.clone(), h.to_json()))
            .collect();
        latency.sort_by(|a, b| a.0.cmp(&b.0));
        let shard_json = |s: &crate::cache::ShardStats| {
            Json::obj(vec![
                ("entries", Json::Num(s.entries as f64)),
                ("bytes", Json::Num(s.bytes as f64)),
                ("hits", Json::Num(s.hits as f64)),
                ("misses", Json::Num(s.misses as f64)),
            ])
        };
        let cached_entries: usize = cache.iter().map(|s| s.entries).sum();
        let cache_obj = Json::obj(vec![
            ("shard_count", Json::Num(cache.len() as f64)),
            (
                "bytes",
                Json::Num(cache.iter().map(|s| s.bytes).sum::<usize>() as f64),
            ),
            ("persistent", Json::Bool(persistent)),
            ("shards", Json::Arr(cache.iter().map(shard_json).collect())),
        ]);
        Json::obj(vec![
            ("requests", load(&self.requests)),
            ("orders", load(&self.orders)),
            ("batches", load(&self.batches)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("queue_rejections", load(&self.queue_rejections)),
            ("timeouts", load(&self.timeouts)),
            ("errors", load(&self.errors)),
            ("connections", load(&self.connections)),
            ("busy_rejections", load(&self.busy_rejections)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("active_jobs", Json::Num(active as f64)),
            ("cached_orderings", Json::Num(cached_entries as f64)),
            ("cache", cache_obj),
            ("latency_us_by_algorithm", Json::Obj(latency)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for micros in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[9], 1); // 1000 in [512, 1024)
        assert_eq!(h.buckets[19], 1); // 1e6 in [2^19, 2^20)
    }

    #[test]
    fn quantile_is_monotone_upper_bound() {
        let mut h = Histogram::default();
        for i in 0..100 {
            h.record(i * 10);
        }
        let p50 = h.quantile_micros(0.5);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= p99);
        assert!(
            p50 >= 495,
            "upper bound must not undershoot the median: {p50}"
        );
        assert_eq!(Histogram::default().quantile_micros(0.5), 0);
    }

    #[test]
    fn snapshot_contains_every_counter() {
        let m = Metrics::new();
        m.inc(&m.requests);
        m.inc(&m.cache_hits);
        m.record_latency("RCM", 100);
        m.record_latency("RCM", 200);
        m.record_latency("SPECTRAL", 5000);
        let shards = vec![
            crate::cache::ShardStats {
                entries: 1,
                bytes: 640,
                hits: 4,
                misses: 2,
            },
            crate::cache::ShardStats::default(),
        ];
        let snap = m.snapshot(3, 2, &shards, true);
        assert_eq!(snap.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(snap.get("active_jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(snap.get("cached_orderings").and_then(Json::as_u64), Some(1));
        let cache = snap.get("cache").expect("cache object");
        assert_eq!(cache.get("shard_count").and_then(Json::as_u64), Some(2));
        assert_eq!(cache.get("bytes").and_then(Json::as_u64), Some(640));
        assert_eq!(cache.get("persistent"), Some(&Json::Bool(true)));
        let Some(Json::Arr(shard_arr)) = cache.get("shards") else {
            panic!("shards array");
        };
        assert_eq!(shard_arr.len(), 2);
        assert_eq!(shard_arr[0].get("hits").and_then(Json::as_u64), Some(4));
        assert_eq!(shard_arr[1].get("misses").and_then(Json::as_u64), Some(0));
        let by_alg = snap.get("latency_us_by_algorithm").expect("latency table");
        let rcm = by_alg.get("RCM").expect("RCM histogram");
        assert_eq!(rcm.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(
            by_alg
                .get("SPECTRAL")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(m.latency_count("RCM"), 2);
    }
}
