//! Live service metrics: atomic counters plus per-algorithm latency
//! histograms, snapshotted as JSON by the STATS command.

use crate::json::Json;
use se_faults::lock_unpoisoned;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two microsecond buckets: bucket `i` counts latencies
/// in `[2^i, 2^(i+1))` µs, with bucket 0 covering `[0, 2)` and the last
/// bucket open-ended. 30 buckets reach ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// A latency histogram with power-of-two µs buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw bucket counts (bucket `i` counts `[2^i, 2^(i+1))` µs, the
    /// last bucket open-ended) — what the Prometheus exposition renders as
    /// cumulative `_bucket` lines.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Sum of every recorded observation in µs.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q <= 1) in µs: the
    /// upper edge of the bucket containing the quantile rank.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_micros
    }

    fn to_json(&self) -> Json {
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        };
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("mean_us", Json::Num(mean)),
            ("p50_us", Json::Num(self.quantile_micros(0.50) as f64)),
            ("p99_us", Json::Num(self.quantile_micros(0.99) as f64)),
            ("max_us", Json::Num(self.max_micros as f64)),
        ])
    }
}

/// All counters the service exposes through STATS.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request lines received (any command).
    pub requests: AtomicU64,
    /// Individual ORDER executions (batch members count individually).
    pub orders: AtomicU64,
    /// BATCH commands received.
    pub batches: AtomicU64,
    /// Orderings served from the cache.
    pub cache_hits: AtomicU64,
    /// Orderings computed because the cache missed.
    pub cache_misses: AtomicU64,
    /// Submissions rejected with queue-full backpressure.
    pub queue_rejections: AtomicU64,
    /// Requests that exceeded their wall-clock timeout.
    pub timeouts: AtomicU64,
    /// Requests that failed (parse errors, bad input, I/O).
    pub errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections turned away at the limit with a retriable busy error.
    /// `Arc` so the reactor transport can bump it from its accept path.
    pub busy_rejections: Arc<AtomicU64>,
    /// ORDER requests whose response was suppressed by a CANCEL (dropped
    /// while queued or finished-but-discarded).
    pub cancelled: AtomicU64,
    /// Requests rejected by per-client rate limiting.
    pub rate_limited: AtomicU64,
    /// `PROGRESS` frames put on the wire (v2 connections that opted in).
    pub progress_frames: AtomicU64,
    /// Reactor event-loop wakeups (poll returns). Shared with the reactor
    /// as an `Arc` so the event loops can bump it without seeing `Metrics`.
    pub reactor_wakeups: Arc<AtomicU64>,
    /// Currently open client connections (gauge).
    pub open_connections: AtomicU64,
    /// ORDER/BATCH-member requests currently submitted but unanswered
    /// (gauge).
    pub inflight_requests: AtomicU64,
    /// ORDER requests forwarded to the mesh peer owning their key and
    /// answered from the peer's response.
    pub peer_forwards: AtomicU64,
    /// Forward attempts that exhausted every candidate peer (the request
    /// then fell back to local computation).
    pub peer_forward_failures: AtomicU64,
    /// Cache entries pushed to successor peers for read fan-out.
    pub peer_replications: AtomicU64,
    /// Replication pushes that failed (peer down, partition, injected
    /// fault) — best-effort, never an error for the client.
    pub peer_replication_failures: AtomicU64,
    /// Cache entries received from peers via REPLICATE (replication or
    /// drain handoff) and stored locally.
    pub peer_entries_received: AtomicU64,
    /// Queued hints delivered to their returned target peer.
    pub hints_replayed: AtomicU64,
    /// Hints dropped — queue overflow (oldest first) or corruption
    /// detected at replay validation.
    pub hints_dropped: AtomicU64,
    /// Entries re-pushed to a diverged replica by the anti-entropy
    /// digest exchange.
    pub antientropy_repairs: AtomicU64,
    /// Peer suspicion-state transitions, keyed `from:to` (lowercase
    /// state names) — rendered as the two-label
    /// `se_peer_transitions_total{from=,to=}` family.
    peer_transitions: Mutex<Vec<(String, u64)>>,
    /// Degraded ORDER responses by machine-readable reason
    /// (`not_converged`, `deadline`, `cancelled`, `matvec_cap`,
    /// `numerical`, `fault:<site>`).
    degraded_orders: Mutex<Vec<(String, u64)>>,
    /// Solver budget aborts by the stage that observed exhaustion.
    budget_aborts: Mutex<Vec<(String, u64)>>,
    /// name() → latency histogram, one per algorithm seen.
    latency: Mutex<Vec<(String, Histogram)>>,
    /// Pipeline stage name → histogram of per-request time spent in that
    /// stage (summed over the span subtree), harvested from the tracer on
    /// every computed (cache-miss) ordering.
    stage_latency: Mutex<Vec<(String, Histogram)>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero).
    pub fn dec(&self, gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Records a completed ordering's latency under its algorithm name.
    pub fn record_latency(&self, alg_name: &str, micros: u64) {
        Self::record_keyed(&self.latency, alg_name, micros);
    }

    /// Records the per-request time one pipeline stage took (the subtree
    /// sum for that stage name from the request's span trace).
    pub fn record_stage_latency(&self, stage: &str, micros: u64) {
        Self::record_keyed(&self.stage_latency, stage, micros);
    }

    fn record_keyed(table: &Mutex<Vec<(String, Histogram)>>, key: &str, micros: u64) {
        let mut table = lock_unpoisoned(table);
        match table.iter_mut().find(|(name, _)| name == key) {
            Some((_, h)) => h.record(micros),
            None => {
                let mut h = Histogram::default();
                h.record(micros);
                table.push((key.to_string(), h));
            }
        }
    }

    /// Counts one degraded ORDER response under its machine-readable
    /// reason.
    pub fn inc_degraded(&self, reason: &str) {
        Self::bump_keyed(&self.degraded_orders, reason);
    }

    /// Counts one budget-driven solver abort under the stage that observed
    /// the exhausted budget.
    pub fn inc_budget_abort(&self, stage: &str) {
        Self::bump_keyed(&self.budget_aborts, stage);
    }

    /// Counts one peer suspicion-state transition
    /// ([`crate::membership::PeerState`] names, e.g. `alive` → `suspect`).
    pub fn inc_peer_transition(&self, from: &str, to: &str) {
        Self::bump_keyed(&self.peer_transitions, &format!("{from}:{to}"));
    }

    /// Transitions counted for the `from` → `to` edge.
    pub fn peer_transition_count(&self, from: &str, to: &str) -> u64 {
        Self::keyed_value(&self.peer_transitions, &format!("{from}:{to}"))
    }

    /// Degraded responses counted for `reason`.
    pub fn degraded_count(&self, reason: &str) -> u64 {
        Self::keyed_value(&self.degraded_orders, reason)
    }

    /// Budget aborts counted for `stage`.
    pub fn budget_abort_count(&self, stage: &str) -> u64 {
        Self::keyed_value(&self.budget_aborts, stage)
    }

    fn bump_keyed(table: &Mutex<Vec<(String, u64)>>, key: &str) {
        let mut table = lock_unpoisoned(table);
        match table.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += 1,
            None => table.push((key.to_string(), 1)),
        }
    }

    fn keyed_value(table: &Mutex<Vec<(String, u64)>>, key: &str) -> u64 {
        lock_unpoisoned(table)
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Total recorded latency observations for `alg_name`.
    pub fn latency_count(&self, alg_name: &str) -> u64 {
        lock_unpoisoned(&self.latency)
            .iter()
            .find(|(name, _)| name == alg_name)
            .map_or(0, |(_, h)| h.count())
    }

    /// Total recorded per-stage observations for `stage`.
    pub fn stage_latency_count(&self, stage: &str) -> u64 {
        lock_unpoisoned(&self.stage_latency)
            .iter()
            .find(|(name, _)| name == stage)
            .map_or(0, |(_, h)| h.count())
    }

    /// Snapshot as the STATS JSON object. `queue_depth`/`active` come from
    /// the pool; `cache` holds the sharded cache's per-shard counters. The
    /// legacy `cached_orderings` total stays at the top level; the `cache`
    /// object adds `shards` (an array, one object per shard, in shard
    /// order), total bytes, and whether persistence is on.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        active: usize,
        cache: &[crate::cache::ShardStats],
        persistent: bool,
    ) -> Json {
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        let keyed_json = |table: &Mutex<Vec<(String, u64)>>| {
            let mut rows: Vec<(String, Json)> = lock_unpoisoned(table)
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(rows)
        };
        let table = lock_unpoisoned(&self.latency);
        let mut latency: Vec<(String, Json)> = table
            .iter()
            .map(|(name, h)| (name.clone(), h.to_json()))
            .collect();
        latency.sort_by(|a, b| a.0.cmp(&b.0));
        let shard_json = |s: &crate::cache::ShardStats| {
            Json::obj(vec![
                ("entries", Json::Num(s.entries as f64)),
                ("bytes", Json::Num(s.bytes as f64)),
                ("hits", Json::Num(s.hits as f64)),
                ("misses", Json::Num(s.misses as f64)),
            ])
        };
        let cached_entries: usize = cache.iter().map(|s| s.entries).sum();
        let cache_obj = Json::obj(vec![
            ("shard_count", Json::Num(cache.len() as f64)),
            (
                "bytes",
                Json::Num(cache.iter().map(|s| s.bytes).sum::<usize>() as f64),
            ),
            ("persistent", Json::Bool(persistent)),
            ("shards", Json::Arr(cache.iter().map(shard_json).collect())),
        ]);
        Json::obj(vec![
            ("requests", load(&self.requests)),
            ("orders", load(&self.orders)),
            ("batches", load(&self.batches)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("queue_rejections", load(&self.queue_rejections)),
            ("timeouts", load(&self.timeouts)),
            ("errors", load(&self.errors)),
            ("connections", load(&self.connections)),
            ("busy_rejections", load(&self.busy_rejections)),
            ("cancelled", load(&self.cancelled)),
            ("rate_limited", load(&self.rate_limited)),
            ("progress_frames", load(&self.progress_frames)),
            ("reactor_wakeups", load(&self.reactor_wakeups)),
            ("open_connections", load(&self.open_connections)),
            ("inflight_requests", load(&self.inflight_requests)),
            ("peer_forwards", load(&self.peer_forwards)),
            ("peer_forward_failures", load(&self.peer_forward_failures)),
            ("peer_replications", load(&self.peer_replications)),
            (
                "peer_replication_failures",
                load(&self.peer_replication_failures),
            ),
            ("peer_entries_received", load(&self.peer_entries_received)),
            ("hints_replayed", load(&self.hints_replayed)),
            ("hints_dropped", load(&self.hints_dropped)),
            ("antientropy_repairs", load(&self.antientropy_repairs)),
            ("peer_transitions", keyed_json(&self.peer_transitions)),
            ("degraded_orders", keyed_json(&self.degraded_orders)),
            ("budget_aborts", keyed_json(&self.budget_aborts)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("active_jobs", Json::Num(active as f64)),
            ("cached_orderings", Json::Num(cached_entries as f64)),
            ("cache", cache_obj),
            ("latency_us_by_algorithm", Json::Obj(latency)),
        ])
    }

    /// Renders the metrics in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, counters and gauges as
    /// single samples, histograms as cumulative `_bucket{le="…"}` series
    /// with `_sum` and `_count`. Latency histograms are labelled by
    /// algorithm, per-stage solver-time histograms by pipeline stage, cache
    /// gauges by shard.
    pub fn render_prometheus(
        &self,
        queue_depth: usize,
        active: usize,
        cache: &[crate::cache::ShardStats],
        persistent: bool,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        counter(
            "se_requests_total",
            "Request lines received (any command).",
            load(&self.requests),
        );
        counter(
            "se_orders_total",
            "Individual ORDER executions (batch members count individually).",
            load(&self.orders),
        );
        counter(
            "se_batches_total",
            "BATCH commands received.",
            load(&self.batches),
        );
        counter(
            "se_cache_hits_total",
            "Orderings served from the cache.",
            load(&self.cache_hits),
        );
        counter(
            "se_cache_misses_total",
            "Orderings computed because the cache missed.",
            load(&self.cache_misses),
        );
        counter(
            "se_queue_rejections_total",
            "Submissions rejected with queue-full backpressure.",
            load(&self.queue_rejections),
        );
        counter(
            "se_timeouts_total",
            "Requests that exceeded their wall-clock timeout.",
            load(&self.timeouts),
        );
        counter(
            "se_errors_total",
            "Requests that failed (parse errors, bad input, I/O).",
            load(&self.errors),
        );
        counter(
            "se_connections_total",
            "Connections accepted.",
            load(&self.connections),
        );
        counter(
            "se_busy_rejections_total",
            "Connections turned away at the connection limit.",
            load(&self.busy_rejections),
        );
        counter(
            "se_cancelled_total",
            "ORDER requests whose response was suppressed by a CANCEL.",
            load(&self.cancelled),
        );
        counter(
            "se_rate_limited_total",
            "Requests rejected by per-client rate limiting.",
            load(&self.rate_limited),
        );
        counter(
            "se_progress_frames_total",
            "PROGRESS frames put on the wire.",
            load(&self.progress_frames),
        );
        counter(
            "se_reactor_wakeups_total",
            "Reactor event-loop wakeups (poll returns).",
            load(&self.reactor_wakeups),
        );
        counter(
            "se_peer_forwards_total",
            "ORDER requests forwarded to the owning mesh peer.",
            load(&self.peer_forwards),
        );
        counter(
            "se_peer_forward_failures_total",
            "Forwards that exhausted every candidate peer and fell back to local compute.",
            load(&self.peer_forward_failures),
        );
        counter(
            "se_peer_replications_total",
            "Cache entries pushed to successor peers.",
            load(&self.peer_replications),
        );
        counter(
            "se_peer_replication_failures_total",
            "Best-effort replication pushes that failed.",
            load(&self.peer_replication_failures),
        );
        counter(
            "se_peer_entries_received_total",
            "Cache entries received from peers via REPLICATE.",
            load(&self.peer_entries_received),
        );
        counter(
            "se_hints_replayed_total",
            "Queued handoff hints delivered to their returned target peer.",
            load(&self.hints_replayed),
        );
        counter(
            "se_hints_dropped_total",
            "Hints dropped by queue overflow or replay-time corruption.",
            load(&self.hints_dropped),
        );
        counter(
            "se_antientropy_repairs_total",
            "Entries re-pushed to a diverged replica by anti-entropy.",
            load(&self.antientropy_repairs),
        );

        // Transition rows are keyed "from:to"; split into the two labels.
        {
            let name = "se_peer_transitions_total";
            let _ = writeln!(
                out,
                "# HELP {name} Peer suspicion-state transitions observed by the failure detector."
            );
            let _ = writeln!(out, "# TYPE {name} counter");
            let mut rows = lock_unpoisoned(&self.peer_transitions).clone();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (edge, v) in rows {
                let (from, to) = edge.split_once(':').unwrap_or((edge.as_str(), ""));
                let _ = writeln!(out, "{name}{{from=\"{from}\",to=\"{to}\"}} {v}");
            }
        }

        let mut labeled_counter =
            |name: &str, help: &str, label: &str, table: &Mutex<Vec<(String, u64)>>| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} counter");
                let mut rows = lock_unpoisoned(table).clone();
                rows.sort_by(|a, b| a.0.cmp(&b.0));
                for (k, v) in rows {
                    let _ = writeln!(out, "{name}{{{label}=\"{k}\"}} {v}");
                }
            };
        labeled_counter(
            "se_degraded_orders_total",
            "Degraded ORDER responses by machine-readable reason.",
            "reason",
            &self.degraded_orders,
        );
        labeled_counter(
            "se_budget_aborts_total",
            "Solver budget aborts by the stage that observed exhaustion.",
            "stage",
            &self.budget_aborts,
        );

        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            "se_queue_depth",
            "Jobs waiting in the worker pool queue.",
            queue_depth as f64,
        );
        gauge(
            "se_active_jobs",
            "Jobs currently executing on pool workers.",
            active as f64,
        );
        gauge(
            "se_open_connections",
            "Currently open client connections.",
            load(&self.open_connections) as f64,
        );
        gauge(
            "se_inflight_requests",
            "Requests submitted to the engine but not yet answered.",
            load(&self.inflight_requests) as f64,
        );
        gauge(
            "se_cache_persistent",
            "Whether the ordering cache spills to disk (1) or not (0).",
            u8::from(persistent) as f64,
        );

        type ShardField = fn(&crate::cache::ShardStats) -> f64;
        let shard_fields: [(&str, &str, ShardField); 4] = [
            (
                "se_cache_shard_entries",
                "Cached orderings per cache shard.",
                |s| s.entries as f64,
            ),
            (
                "se_cache_shard_bytes",
                "Bytes charged against each shard's budget.",
                |s| s.bytes as f64,
            ),
            (
                "se_cache_shard_hits",
                "Lookups answered per cache shard.",
                |s| s.hits as f64,
            ),
            (
                "se_cache_shard_misses",
                "Lookups each cache shard could not answer.",
                |s| s.misses as f64,
            ),
        ];
        for (metric, help, value) in shard_fields {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (i, s) in cache.iter().enumerate() {
                let _ = writeln!(out, "{metric}{{shard=\"{i}\"}} {}", value(s));
            }
        }

        let histogram_family = |out: &mut String,
                                metric: &str,
                                help: &str,
                                label: &str,
                                table: &[(String, Histogram)]| {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} histogram");
            for (key, h) in table {
                let mut cumulative = 0u64;
                for (i, &c) in h.buckets().iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                    cumulative += c;
                    let le = 1u64 << (i + 1);
                    let _ = writeln!(
                        out,
                        "{metric}_bucket{{{label}=\"{key}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{{label}=\"{key}\",le=\"+Inf\"}} {}",
                    h.count()
                );
                let _ = writeln!(out, "{metric}_sum{{{label}=\"{key}\"}} {}", h.sum_micros());
                let _ = writeln!(out, "{metric}_count{{{label}=\"{key}\"}} {}", h.count());
            }
        };
        let sorted = |table: &Mutex<Vec<(String, Histogram)>>| {
            let table = lock_unpoisoned(table);
            let mut rows: Vec<(String, Histogram)> = table
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        Histogram {
                            buckets: h.buckets,
                            count: h.count,
                            sum_micros: h.sum_micros,
                            max_micros: h.max_micros,
                        },
                    )
                })
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        histogram_family(
            &mut out,
            "se_order_latency_microseconds",
            "End-to-end ORDER latency by algorithm.",
            "alg",
            &sorted(&self.latency),
        );
        histogram_family(
            &mut out,
            "se_stage_latency_microseconds",
            "Per-request solver time by pipeline stage (span subtree sums).",
            "stage",
            &sorted(&self.stage_latency),
        );
        out
    }
}

/// The STATS fragment for the engine's solver pool cache — scheduler health
/// of the shared work-stealing pools (`steals`/`parks` cumulative, `parked`
/// a point-in-time gauge, `cached` the live pool count). The engine appends
/// this under the `"solver_pool"` key.
pub fn solver_pool_json(cached: usize, steals: u64, parks: u64, parked: usize) -> Json {
    Json::Obj(vec![
        ("cached".to_string(), Json::Num(cached as f64)),
        ("steals".to_string(), Json::Num(steals as f64)),
        ("parks".to_string(), Json::Num(parks as f64)),
        ("parked_workers".to_string(), Json::Num(parked as f64)),
    ])
}

/// The METRICS fragment for the engine's solver pool cache, in Prometheus
/// text exposition format. `se_pool_steals_total` rising with flat
/// `se_orders_total` means chunk costs are irregular (stealing is doing real
/// balancing); `se_pool_parked_workers` pinned at the pool size means the
/// pools are idle.
pub fn render_solver_pool_prometheus(
    cached: usize,
    steals: u64,
    parks: u64,
    parked: usize,
) -> String {
    format!(
        "# HELP se_pool_steals_total Tasks stolen across solver-pool worker deques.\n\
         # TYPE se_pool_steals_total counter\n\
         se_pool_steals_total {steals}\n\
         # HELP se_pool_parks_total Solver-pool worker idle transitions (condvar parks).\n\
         # TYPE se_pool_parks_total counter\n\
         se_pool_parks_total {parks}\n\
         # HELP se_pool_parked_workers Solver-pool workers currently parked.\n\
         # TYPE se_pool_parked_workers gauge\n\
         se_pool_parked_workers {parked}\n\
         # HELP se_pool_cached Solver pools alive in the per-thread-count cache.\n\
         # TYPE se_pool_cached gauge\n\
         se_pool_cached {cached}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for micros in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[9], 1); // 1000 in [512, 1024)
        assert_eq!(h.buckets[19], 1); // 1e6 in [2^19, 2^20)
    }

    #[test]
    fn quantile_is_monotone_upper_bound() {
        let mut h = Histogram::default();
        for i in 0..100 {
            h.record(i * 10);
        }
        let p50 = h.quantile_micros(0.5);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= p99);
        assert!(
            p50 >= 495,
            "upper bound must not undershoot the median: {p50}"
        );
        assert_eq!(Histogram::default().quantile_micros(0.5), 0);
    }

    #[test]
    fn snapshot_contains_every_counter() {
        let m = Metrics::new();
        m.inc(&m.requests);
        m.inc(&m.cache_hits);
        m.record_latency("RCM", 100);
        m.record_latency("RCM", 200);
        m.record_latency("SPECTRAL", 5000);
        let shards = vec![
            crate::cache::ShardStats {
                entries: 1,
                bytes: 640,
                hits: 4,
                misses: 2,
            },
            crate::cache::ShardStats::default(),
        ];
        let snap = m.snapshot(3, 2, &shards, true);
        assert_eq!(snap.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(snap.get("active_jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(snap.get("cached_orderings").and_then(Json::as_u64), Some(1));
        let cache = snap.get("cache").expect("cache object");
        assert_eq!(cache.get("shard_count").and_then(Json::as_u64), Some(2));
        assert_eq!(cache.get("bytes").and_then(Json::as_u64), Some(640));
        assert_eq!(cache.get("persistent"), Some(&Json::Bool(true)));
        let Some(Json::Arr(shard_arr)) = cache.get("shards") else {
            panic!("shards array");
        };
        assert_eq!(shard_arr.len(), 2);
        assert_eq!(shard_arr[0].get("hits").and_then(Json::as_u64), Some(4));
        assert_eq!(shard_arr[1].get("misses").and_then(Json::as_u64), Some(0));
        let by_alg = snap.get("latency_us_by_algorithm").expect("latency table");
        let rcm = by_alg.get("RCM").expect("RCM histogram");
        assert_eq!(rcm.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(
            by_alg
                .get("SPECTRAL")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(m.latency_count("RCM"), 2);
    }

    #[test]
    fn degradation_and_rate_limit_counters_surface_everywhere() {
        let m = Metrics::new();
        m.inc(&m.rate_limited);
        m.inc_degraded("not_converged");
        m.inc_degraded("not_converged");
        m.inc_degraded("deadline");
        m.inc_budget_abort("lanczos");
        assert_eq!(m.degraded_count("not_converged"), 2);
        assert_eq!(m.degraded_count("unknown"), 0);
        assert_eq!(m.budget_abort_count("lanczos"), 1);
        let snap = m.snapshot(0, 0, &[], false);
        assert_eq!(snap.get("rate_limited").and_then(Json::as_u64), Some(1));
        let degraded = snap.get("degraded_orders").expect("degraded table");
        assert_eq!(
            degraded.get("not_converged").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(degraded.get("deadline").and_then(Json::as_u64), Some(1));
        assert_eq!(
            snap.get("budget_aborts")
                .and_then(|t| t.get("lanczos"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let text = m.render_prometheus(0, 0, &[], false);
        assert!(text.contains("se_rate_limited_total 1"));
        assert!(text.contains("se_degraded_orders_total{reason=\"not_converged\"} 2"));
        assert!(text.contains("se_budget_aborts_total{stage=\"lanczos\"} 1"));
    }

    #[test]
    fn peer_counters_surface_in_snapshot_and_prometheus() {
        let m = Metrics::new();
        m.inc(&m.peer_forwards);
        m.inc(&m.peer_forward_failures);
        m.inc(&m.peer_replications);
        m.inc(&m.peer_replications);
        m.inc(&m.peer_replication_failures);
        m.inc(&m.peer_entries_received);
        let snap = m.snapshot(0, 0, &[], false);
        assert_eq!(snap.get("peer_forwards").and_then(Json::as_u64), Some(1));
        assert_eq!(
            snap.get("peer_forward_failures").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("peer_replications").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            snap.get("peer_replication_failures").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("peer_entries_received").and_then(Json::as_u64),
            Some(1)
        );
        let text = m.render_prometheus(0, 0, &[], false);
        assert!(text.contains("se_peer_forwards_total 1"));
        assert!(text.contains("se_peer_forward_failures_total 1"));
        assert!(text.contains("se_peer_replications_total 2"));
        assert!(text.contains("se_peer_replication_failures_total 1"));
        assert!(text.contains("se_peer_entries_received_total 1"));
        // A non-mesh node reports zeros, not missing keys.
        let solo = Metrics::new().snapshot(0, 0, &[], false);
        assert_eq!(solo.get("peer_forwards").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn self_healing_counters_surface_in_snapshot_and_prometheus() {
        let m = Metrics::new();
        m.inc(&m.hints_replayed);
        m.inc(&m.hints_dropped);
        m.inc(&m.antientropy_repairs);
        m.inc_peer_transition("alive", "suspect");
        m.inc_peer_transition("alive", "suspect");
        m.inc_peer_transition("suspect", "dead");
        assert_eq!(m.peer_transition_count("alive", "suspect"), 2);
        assert_eq!(m.peer_transition_count("dead", "rejoining"), 0);

        let snap = m.snapshot(0, 0, &[], false);
        assert_eq!(snap.get("hints_replayed").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("hints_dropped").and_then(Json::as_u64), Some(1));
        assert_eq!(
            snap.get("antientropy_repairs").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("peer_transitions")
                .and_then(|t| t.get("alive:suspect"))
                .and_then(Json::as_u64),
            Some(2)
        );

        let text = m.render_prometheus(0, 0, &[], false);
        assert!(text.contains("se_hints_replayed_total 1"));
        assert!(text.contains("se_hints_dropped_total 1"));
        assert!(text.contains("se_antientropy_repairs_total 1"));
        assert!(text.contains("se_peer_transitions_total{from=\"alive\",to=\"suspect\"} 2"));
        assert!(text.contains("se_peer_transitions_total{from=\"suspect\",to=\"dead\"} 1"));
    }
}
