//! The transport layer: socket accept, connection limits, and line/frame
//! I/O.
//!
//! Owns the accept loop and the per-connection byte plumbing ([`Conn`]);
//! everything above it sees lines in and (line, frames) out, never a raw
//! socket. Connections beyond the configured limit are turned away *at
//! accept time* with a single retriable `server busy` error line — clients
//! see explicit backpressure instead of a hung dial.

use crate::engine::Engine;
use crate::frame::write_frame_bytes;
use crate::proto::{encode_response, ErrorResponse, FramePayload, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;

/// One accepted connection: buffered line reads plus line/frame writes.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    /// Wraps a stream; fails only if the stream cannot be cloned for the
    /// write half.
    pub fn new(stream: TcpStream) -> std::io::Result<Conn> {
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Reads the next line; `Ok(None)` is a clean EOF.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => Ok(Some(line)),
        }
    }

    /// Writes one response line (adds the newline) followed by its binary
    /// frames, in order, and flushes — a response is on the wire whole or
    /// not at all from the client's perspective.
    pub fn write_response(&mut self, line: &str, frames: &[FramePayload]) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        for f in frames {
            write_frame_bytes(&mut self.writer, f.bytes())?;
        }
        self.writer.flush()
    }
}

/// Decrements the live-connection count when a handler exits, however it
/// exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, AtOrd::SeqCst);
    }
}

/// Accepts connections until the engine starts shutting down, spawning one
/// session thread per connection and enforcing `max_conns`. Runs on the
/// dedicated accept thread; returns only after the shutdown handshake
/// completed so callers can treat "accept thread exited" as "server fully
/// stopped".
pub fn accept_loop(listener: TcpListener, engine: Arc<Engine>, max_conns: usize) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if engine.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.fetch_add(1, AtOrd::SeqCst) >= max_conns {
            active.fetch_sub(1, AtOrd::SeqCst);
            engine.metrics().inc(&engine.metrics().busy_rejections);
            reject_busy(stream);
            continue;
        }
        engine.metrics().inc(&engine.metrics().connections);
        let guard = ConnGuard(Arc::clone(&active));
        let conn_engine = Arc::clone(&engine);
        let _ = std::thread::Builder::new()
            .name("orderd-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                if let Ok(conn) = Conn::new(stream) {
                    crate::session::run(conn, &conn_engine);
                }
            });
    }
    // Outlive the drain and the SHUTDOWN ack.
    engine.wait_shutdown_complete();
}

/// Writes the one-line retriable busy error and closes the stream.
fn reject_busy(mut stream: TcpStream) {
    let resp = Response::Error(ErrorResponse::retriable(
        "server busy: connection limit reached, retry later",
    ));
    let _ = writeln!(stream, "{}", encode_response(&resp));
    let _ = stream.flush();
}
