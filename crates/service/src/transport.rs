//! The transport layer: socket accept, connection limits, and line/frame
//! I/O.
//!
//! Owns the accept loop and the per-connection byte plumbing ([`Conn`]);
//! everything above it sees lines in and (line, frames) out, never a raw
//! socket. Connections beyond the configured limit are turned away *at
//! accept time* with a single retriable `server busy` error line — clients
//! see explicit backpressure instead of a hung dial. Two further
//! protections live here: an optional per-connection socket I/O timeout
//! (bounding how long a slow-loris client can pin a connection slot while
//! trickling bytes) and the per-client-IP token-bucket [`RateLimiter`] the
//! session layer charges per ORDER.

use crate::engine::Engine;
use crate::frame::write_frame_bytes;
use crate::proto::{encode_response, ErrorResponse, FramePayload, Response};
use se_faults::lock_unpoisoned;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One accepted connection: buffered line reads plus line/frame writes.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    /// Wraps a stream; fails only if the stream cannot be cloned for the
    /// write half. With `io_timeout` set, every socket read and write on
    /// the connection must make progress within that window — a stalled
    /// client gets disconnected instead of holding its slot forever.
    pub fn new(stream: TcpStream, io_timeout: Option<Duration>) -> std::io::Result<Conn> {
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Reads the next line; `Ok(None)` is a clean EOF.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => Ok(Some(line)),
        }
    }

    /// Writes one response line (adds the newline) followed by its binary
    /// frames, in order, and flushes — a response is on the wire whole or
    /// not at all from the client's perspective.
    pub fn write_response(&mut self, line: &str, frames: &[FramePayload]) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        for f in frames {
            write_frame_bytes(&mut self.writer, f.bytes())?;
        }
        self.writer.flush()
    }
}

/// A token bucket per client IP: `rate` tokens replenish per second up to
/// `burst`, and the session layer charges one token per ORDER (one per
/// BATCH member). A client that runs dry gets a fatal `rate limited` error
/// line instead of service.
///
/// Buckets are keyed by peer IP so reconnecting does not reset the meter.
/// The table is bounded: when it grows past `RateLimiter::MAX_CLIENTS`,
/// buckets that have fully replenished (i.e. idle clients) are dropped.
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl RateLimiter {
    /// Idle-bucket eviction threshold for the per-IP table.
    const MAX_CLIENTS: usize = 4096;

    /// A limiter replenishing `rate` tokens per second per client IP, with
    /// bucket capacity `burst`. Both are clamped to at least 1.
    pub fn new(rate: u64, burst: u64) -> Self {
        RateLimiter {
            rate: rate.max(1) as f64,
            burst: burst.max(1) as f64,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Charges `cost` tokens against `peer`'s bucket, replenishing it
    /// first. Returns whether the request is allowed.
    pub fn allow(&self, peer: IpAddr, cost: u64) -> bool {
        let now = Instant::now();
        let mut buckets = lock_unpoisoned(&self.buckets);
        if buckets.len() >= Self::MAX_CLIENTS && !buckets.contains_key(&peer) {
            // Drop replenished (idle) buckets; a full bucket carries no
            // information beyond its default state.
            let (rate, burst) = (self.rate, self.burst);
            buckets.retain(|_, b| {
                (b.tokens + now.duration_since(b.last).as_secs_f64() * rate) < burst
            });
        }
        let b = buckets.entry(peer).or_insert(TokenBucket {
            tokens: self.burst,
            last: now,
        });
        b.tokens =
            (b.tokens + now.duration_since(b.last).as_secs_f64() * self.rate).min(self.burst);
        b.last = now;
        if b.tokens >= cost as f64 {
            b.tokens -= cost as f64;
            true
        } else {
            false
        }
    }
}

/// Decrements the live-connection count when a handler exits, however it
/// exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, AtOrd::SeqCst);
    }
}

/// Accepts connections until the engine starts shutting down, spawning one
/// session thread per connection and enforcing `max_conns`. Runs on the
/// dedicated accept thread; returns only after the shutdown handshake
/// completed so callers can treat "accept thread exited" as "server fully
/// stopped".
pub fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    max_conns: usize,
    rate: Option<Arc<RateLimiter>>,
    io_timeout: Option<Duration>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if engine.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.fetch_add(1, AtOrd::SeqCst) >= max_conns {
            active.fetch_sub(1, AtOrd::SeqCst);
            engine.metrics().inc(&engine.metrics().busy_rejections);
            reject_busy(stream);
            continue;
        }
        engine.metrics().inc(&engine.metrics().connections);
        let guard = ConnGuard(Arc::clone(&active));
        let conn_engine = Arc::clone(&engine);
        let conn_rate = rate.clone();
        let _ = std::thread::Builder::new()
            .name("orderd-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                let peer = stream.peer_addr().map(|a| a.ip()).ok();
                if let Ok(conn) = Conn::new(stream, io_timeout) {
                    crate::session::run(conn, &conn_engine, peer, conn_rate.as_deref());
                }
            });
    }
    // Outlive the drain and the SHUTDOWN ack.
    engine.wait_shutdown_complete();
}

/// Writes the one-line retriable busy error and closes the stream.
fn reject_busy(mut stream: TcpStream) {
    let resp = Response::Error(ErrorResponse::retriable(
        "server busy: connection limit reached, retry later",
    ));
    let _ = writeln!(stream, "{}", encode_response(&resp));
    let _ = stream.flush();
}
