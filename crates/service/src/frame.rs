//! Length-prefixed binary frames for permutation payloads.
//!
//! The NDJSON protocol pays base-10 rendering and parsing for every `perm`
//! entry — the dominant payload of an ORDER response. After a client
//! negotiates `{"cmd":"HELLO","frames":"binary"}`, responses keep their
//! single JSON header line but replace `"perm":[…]` with
//! `"perm_frame":true`, and one binary frame per marked body follows the
//! line immediately (in marker order — at most one for ORDER, one per
//! marked slot for BATCH).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SOPM"
//! 4       1     version (1)
//! 5       1     element width in bytes (4 or 8)
//! 6       2     reserved (0)
//! 8       8     u64 element count n
//! 16      n*w   elements: new position → old index, each < n
//! ```
//!
//! The width is 4 unless the permutation has more than `u32::MAX` entries.
//! Readers validate magic, version, width, a size cap, and that every
//! element is in `0..n`, so a corrupt frame is an error, never a bogus
//! permutation.

use std::io::{self, Read, Write};

/// Frame magic: "Spectral Order PerM".
pub const PERM_FRAME_MAGIC: [u8; 4] = *b"SOPM";

/// Binary frame format version.
pub const PERM_FRAME_VERSION: u8 = 1;

/// Upper bound on accepted element counts (2³² entries ≈ 34 GB at width
/// 8) — a decode-side guard so a corrupt or hostile header cannot make the
/// reader allocate unboundedly.
pub const MAX_PERM_FRAME_LEN: u64 = 1 << 32;

/// How response payloads are framed on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameMode {
    /// Everything is newline-delimited JSON (the default, always available).
    #[default]
    Ndjson,
    /// JSON header lines + binary permutation frames (negotiated via HELLO).
    Binary,
}

impl FrameMode {
    /// The wire name used in HELLO negotiation.
    pub fn wire_name(self) -> &'static str {
        match self {
            FrameMode::Ndjson => "ndjson",
            FrameMode::Binary => "binary",
        }
    }

    /// Parses a HELLO `frames` value.
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "ndjson" | "json" => FrameMode::Ndjson,
            "binary" => FrameMode::Binary,
            _ => return None,
        })
    }
}

/// Renders a permutation as one complete binary frame (header + payload).
pub fn encode_perm_frame(perm: &[usize]) -> Vec<u8> {
    let n = perm.len();
    let width: u8 = if n > u32::MAX as usize { 8 } else { 4 };
    let mut out = Vec::with_capacity(16 + n * width as usize);
    out.extend_from_slice(&PERM_FRAME_MAGIC);
    out.push(PERM_FRAME_VERSION);
    out.push(width);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    if width == 4 {
        for &v in perm {
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
    } else {
        for &v in perm {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
    }
    out
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad perm frame: {msg}"))
}

/// Reads one binary perm frame from `r`, validating the header and that the
/// payload is a plausible permutation (every element in `0..n`).
pub fn read_perm_frame(r: &mut impl Read) -> io::Result<Vec<usize>> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if header[0..4] != PERM_FRAME_MAGIC {
        return Err(bad("wrong magic"));
    }
    if header[4] != PERM_FRAME_VERSION {
        return Err(bad("unsupported version"));
    }
    let width = header[5] as usize;
    if width != 4 && width != 8 {
        return Err(bad("element width must be 4 or 8"));
    }
    let n = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if n > MAX_PERM_FRAME_LEN {
        return Err(bad("element count exceeds the frame size cap"));
    }
    let n = n as usize;
    let mut payload = vec![0u8; n * width];
    r.read_exact(&mut payload)?;
    let mut perm = Vec::with_capacity(n);
    if width == 4 {
        for chunk in payload.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().unwrap()) as usize;
            if v >= n {
                return Err(bad("element out of range"));
            }
            perm.push(v);
        }
    } else {
        for chunk in payload.chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().unwrap());
            if v >= n as u64 {
                return Err(bad("element out of range"));
            }
            perm.push(v as usize);
        }
    }
    Ok(perm)
}

/// Writes a pre-encoded frame (from [`encode_perm_frame`] or the cache's
/// stored copy) to `w`.
pub fn write_frame_bytes(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

/// Renders a permutation as the NDJSON array text `[p0,p1,…]` — the exact
/// bytes `"perm":…` carries on the wire, cached alongside the binary frame
/// so hits skip base-10 rendering entirely.
pub fn encode_perm_json(perm: &[usize]) -> String {
    let mut out = String::with_capacity(perm.len() * 7 + 2);
    out.push('[');
    for (i, &v) in perm.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(itoa(v).as_str());
    }
    out.push(']');
    out
}

/// Minimal integer-to-string without going through `format!` in the hot
/// loop.
fn itoa(v: usize) -> String {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for perm in [vec![], vec![0], vec![2, 0, 1], (0..1000).rev().collect()] {
            let frame = encode_perm_frame(&perm);
            assert_eq!(&frame[0..4], &PERM_FRAME_MAGIC);
            let back = read_perm_frame(&mut frame.as_slice()).unwrap();
            assert_eq!(back, perm);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let good = encode_perm_frame(&[1, 0, 2]);
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(read_perm_frame(&mut bad_magic.as_slice()).is_err());
        // Wrong version.
        let mut bad_ver = good.clone();
        bad_ver[4] = 9;
        assert!(read_perm_frame(&mut bad_ver.as_slice()).is_err());
        // Bad width.
        let mut bad_width = good.clone();
        bad_width[5] = 3;
        assert!(read_perm_frame(&mut bad_width.as_slice()).is_err());
        // Out-of-range element.
        let mut bad_elem = good.clone();
        bad_elem[16..20].copy_from_slice(&7u32.to_le_bytes());
        assert!(read_perm_frame(&mut bad_elem.as_slice()).is_err());
        // Truncated payload.
        let short = &good[..good.len() - 1];
        assert!(read_perm_frame(&mut &short[..]).is_err());
        // Absurd count.
        let mut huge = good.clone();
        huge[8..16].copy_from_slice(&(MAX_PERM_FRAME_LEN + 1).to_le_bytes());
        assert!(read_perm_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn fault_plane_corrupted_frames_never_panic() {
        use se_faults::{sites, FaultPlane};
        let perm: Vec<usize> = (0..64).rev().collect();
        let good = encode_perm_frame(&perm);
        let faults = FaultPlane::seeded(0xF0A7);
        faults.arm_times(sites::WIRE_CORRUPT, 256);
        let mut rejected = 0;
        for _ in 0..256 {
            let mut bytes = good.clone();
            assert!(faults.corrupt(sites::WIRE_CORRUPT, &mut bytes));
            match read_perm_frame(&mut bytes.as_slice()) {
                // A flip in the payload *bits* of an in-range element can
                // yield another valid permutation-frame payload; what the
                // decoder must guarantee is error-or-value, never a panic
                // or an out-of-range element.
                Ok(decoded) => assert!(decoded.iter().all(|&v| v < perm.len())),
                Err(_) => rejected += 1,
            }
        }
        assert_eq!(faults.fired(sites::WIRE_CORRUPT), 256);
        assert!(rejected > 0, "corruption must be detectable");
        // The untouched frame still decodes — corruption never leaks into
        // the caller's buffer lifecycle.
        assert_eq!(read_perm_frame(&mut good.as_slice()).unwrap(), perm);
    }

    #[test]
    fn json_rendering_matches_format_macro() {
        for perm in [vec![], vec![0], vec![12, 7, 1000, 3]] {
            let expect = format!(
                "[{}]",
                perm.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            assert_eq!(encode_perm_json(&perm), expect);
        }
    }

    #[test]
    fn frame_mode_wire_names() {
        assert_eq!(FrameMode::from_wire("binary"), Some(FrameMode::Binary));
        assert_eq!(FrameMode::from_wire("ndjson"), Some(FrameMode::Ndjson));
        assert_eq!(FrameMode::from_wire("carrier-pigeon"), None);
        assert_eq!(FrameMode::default(), FrameMode::Ndjson);
    }
}
