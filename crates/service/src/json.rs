//! A minimal JSON value model, parser and writer (std-only).
//!
//! The service speaks newline-delimited JSON; with no external registry
//! available the (de)serialization layer is hand-rolled. The subset is
//! complete for the protocol's needs: objects, arrays, strings with
//! escapes, numbers (f64), booleans and null. Object key order is
//! preserved so responses are stable and diffable in tests.

use std::fmt::Write as _;
use std::sync::Arc;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON text spliced verbatim into the output.
    ///
    /// Never produced by [`parse`]; the writer emits the text as-is, so the
    /// caller is responsible for it being valid single-line JSON. The cache
    /// fast path uses this to reuse a permutation array rendered once at
    /// insert time (shared via `Arc`, so splicing is O(1) in allocations).
    Raw(Arc<str>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007_199_254_740_992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string (never contains a raw
    /// newline, so it is safe for the newline-delimited wire format).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Raw(text) => out.push_str(text),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Nesting depth cap: the protocol never needs more, and a cap keeps
/// adversarial inputs from overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("bad number '{text}'"),
            offset: start,
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Batch-copy the whole run of plain characters up to
                    // the next quote, backslash, or control byte. Those
                    // delimiters are ASCII, so the run ends on a char
                    // boundary and one UTF-8 validation covers the run —
                    // keeping long strings (inline matrix payloads) O(n)
                    // instead of revalidating the tail per character.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":"x"}"#,
            r#"{"nested":{"deep":{"ok":false}}}"#,
        ];
        for c in cases {
            let v = parse(c).unwrap();
            assert_eq!(v.to_string_compact(), c, "case {c}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line1\nline2\t\"quoted\" \\ \u{1}".to_string());
        let s = v.to_string_compact();
        assert!(!s.contains('\n'), "wire form must be single-line: {s}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "\"abc",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashing() {
        let s = "[".repeat(100_000);
        assert!(parse(&s).is_err());
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("perm", Json::Raw("[2,0,1]".into())),
        ]);
        let s = v.to_string_compact();
        assert_eq!(s, r#"{"ok":true,"perm":[2,0,1]}"#);
        // The spliced output parses back to the plain equivalent.
        let back = parse(&s).unwrap();
        assert_eq!(
            back.get("perm").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn getters() {
        let v = parse(r#"{"cmd":"ORDER","n":4,"ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("ORDER"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("missing"), None);
    }
}
