//! The `spectral-orderd` TCP server.
//!
//! One accept-loop thread, one lightweight thread per connection, and a
//! fixed [`WorkerPool`] executing the orderings.
//! Connection handlers never compute: they decode a line, push a job, and
//! wait on an `mpsc` channel with the request's wall-clock timeout. The
//! bounded queue makes overload explicit — clients see a retriable
//! `queue full` error instead of unbounded latency.

use crate::cache::OrderingCache;
use crate::metrics::Metrics;
use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{
    decode_request, encode_response, ErrorResponse, MatrixFormat, MatrixSource, OrderRequest,
    OrderResponse, Request, Response,
};
use sparsemat::pattern::SymmetricPattern;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering as AtOrd};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads computing orderings.
    pub workers: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Byte budget of the content-addressed ordering cache.
    pub cache_budget_bytes: usize,
    /// Default per-request wall-clock timeout (ms); requests may override.
    pub default_timeout_ms: u64,
    /// Default solver threads per ordering job (`0` = all cores); requests
    /// may override with their `"threads"` field. Orderings are bit-identical
    /// for every value, so this only affects wall-clock time — which is why
    /// the cache key deliberately ignores it. Effective only with the
    /// `parallel` feature; otherwise every job runs serially.
    pub solver_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
            queue_capacity: 64,
            cache_budget_bytes: 32 << 20,
            default_timeout_ms: 30_000,
            solver_threads: 1,
        }
    }
}

struct Shared {
    /// `None` once a SHUTDOWN has taken the pool for draining.
    pool: Mutex<Option<WorkerPool>>,
    cache: Mutex<OrderingCache>,
    metrics: Metrics,
    shutting_down: AtomicBool,
    /// Set once the drain finished and the SHUTDOWN ack went out; the
    /// accept thread waits on it so the process outlives the ack.
    shutdown_complete: (Mutex<bool>, Condvar),
    default_timeout: Duration,
    solver_threads: usize,
    addr: SocketAddr,
}

impl Shared {
    fn mark_shutdown_complete(&self) {
        *self.shutdown_complete.0.lock().unwrap() = true;
        self.shutdown_complete.1.notify_all();
    }

    fn wait_shutdown_complete(&self) {
        let mut done = self.shutdown_complete.0.lock().unwrap();
        while !*done {
            done = self.shutdown_complete.1.wait(done).unwrap();
        }
    }
}

/// A running server; dropping the handle does not stop it — send SHUTDOWN.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live metrics (shared with the server).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Blocks until the accept loop exits (i.e. after SHUTDOWN).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds `cfg.addr` and starts serving in background threads.
pub fn serve(cfg: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        pool: Mutex::new(Some(WorkerPool::new(cfg.workers, cfg.queue_capacity))),
        cache: Mutex::new(OrderingCache::new(cfg.cache_budget_bytes)),
        metrics: Metrics::new(),
        shutting_down: AtomicBool::new(false),
        shutdown_complete: (Mutex::new(false), Condvar::new()),
        default_timeout: Duration::from_millis(cfg.default_timeout_ms),
        solver_threads: cfg.solver_threads,
        addr,
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("orderd-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        shared,
        accept_thread,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(AtOrd::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.inc(&shared.metrics.connections);
        let conn_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("orderd-conn".to_string())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
    // Outlive the drain and the SHUTDOWN ack: callers treat "accept thread
    // exited" as "server fully stopped".
    shared.wait_shutdown_complete();
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.metrics.inc(&shared.metrics.requests);
        let response = match decode_request(&line) {
            Err(e) => {
                shared.metrics.inc(&shared.metrics.errors);
                Response::Error(ErrorResponse::fatal(e.to_string()))
            }
            Ok(Request::Order(req)) => match run_order(shared, req) {
                Ok(r) => Response::Order(r),
                Err(e) => Response::Error(e),
            },
            Ok(Request::Batch(reqs)) => {
                shared.metrics.inc(&shared.metrics.batches);
                Response::Batch(run_batch(shared, reqs))
            }
            Ok(Request::Stats) => Response::Stats(stats_snapshot(shared)),
            Ok(Request::Shutdown) => {
                let drained = begin_shutdown(shared);
                let resp = Response::ShutdownOk { drained };
                let _ = writeln!(writer, "{}", encode_response(&resp));
                let _ = writer.flush();
                shared.mark_shutdown_complete();
                return;
            }
        };
        if writeln!(writer, "{}", encode_response(&response)).is_err() {
            break;
        }
    }
}

fn stats_snapshot(shared: &Shared) -> crate::json::Json {
    let (depth, active) = match shared.pool.lock().unwrap().as_ref() {
        Some(p) => (p.queue_depth(), p.active()),
        None => (0, 0),
    };
    let cached = shared.cache.lock().unwrap().len();
    shared.metrics.snapshot(depth, active, cached)
}

/// Stops accepting connections, drains the pool, and returns how many jobs
/// the pool completed over its lifetime. Idempotent: later calls return 0.
fn begin_shutdown(shared: &Arc<Shared>) -> u64 {
    shared.shutting_down.store(true, AtOrd::SeqCst);
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(shared.addr);
    let pool = shared.pool.lock().unwrap().take();
    match pool {
        Some(p) => p.shutdown_drain(),
        None => 0,
    }
}

type OrderOutcome = Result<OrderResponse, ErrorResponse>;

/// A submitted job: the channel its result will arrive on, plus the
/// wall-clock deadline the handler enforces.
struct Pending {
    rx: mpsc::Receiver<OrderOutcome>,
    timeout: Duration,
}

/// Submits one ordering job and waits for its result under the timeout.
fn run_order(shared: &Arc<Shared>, req: OrderRequest) -> OrderOutcome {
    let pending = submit_order(shared, req)?;
    await_order(shared, pending)
}

/// Pipelined batch: submit everything first, then collect in order, so the
/// pool overlaps the work across its workers.
fn run_batch(shared: &Arc<Shared>, reqs: Vec<OrderRequest>) -> Vec<OrderOutcome> {
    let submitted: Vec<Result<Pending, ErrorResponse>> =
        reqs.into_iter().map(|r| submit_order(shared, r)).collect();
    submitted
        .into_iter()
        .map(|slot| slot.and_then(|pending| await_order(shared, pending)))
        .collect()
}

fn submit_order(shared: &Arc<Shared>, req: OrderRequest) -> Result<Pending, ErrorResponse> {
    shared.metrics.inc(&shared.metrics.orders);
    let timeout = req
        .timeout_ms
        .map_or(shared.default_timeout, Duration::from_millis);
    let (tx, rx) = mpsc::channel::<OrderOutcome>();
    let job_shared = Arc::clone(shared);
    let submit = {
        let guard = shared.pool.lock().unwrap();
        match guard.as_ref() {
            Some(pool) => pool.try_submit(Box::new(move || {
                // The receiver may have timed out and gone; ignore send errors.
                let _ = tx.send(execute_order(&job_shared, &req));
            })),
            None => Err(SubmitError::ShuttingDown),
        }
    };
    match submit {
        Ok(()) => Ok(Pending { rx, timeout }),
        Err(SubmitError::QueueFull) => {
            shared.metrics.inc(&shared.metrics.queue_rejections);
            Err(ErrorResponse::retriable("queue full, retry later"))
        }
        Err(SubmitError::ShuttingDown) => {
            shared.metrics.inc(&shared.metrics.errors);
            Err(ErrorResponse::fatal("server is shutting down"))
        }
    }
}

fn await_order(shared: &Shared, pending: Pending) -> OrderOutcome {
    match pending.rx.recv_timeout(pending.timeout) {
        Ok(outcome) => outcome,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shared.metrics.inc(&shared.metrics.timeouts);
            Err(ErrorResponse::retriable("request timed out"))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            shared.metrics.inc(&shared.metrics.errors);
            Err(ErrorResponse::fatal("worker dropped the request"))
        }
    }
}

/// Loads the matrix pattern from an ORDER request's source.
fn load_pattern(source: &MatrixSource) -> Result<SymmetricPattern, ErrorResponse> {
    let fatal =
        |e: &dyn std::fmt::Display| ErrorResponse::fatal(format!("cannot read matrix: {e}"));
    let from_csr = |m: sparsemat::csr::CsrMatrix| {
        m.symmetrize()
            .and_then(|s| s.pattern())
            .map_err(|e| fatal(&e))
    };
    match source {
        MatrixSource::Inline { format, payload } => match format {
            MatrixFormat::MatrixMarket => sparsemat::io::read_matrix_market_str(payload)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
            MatrixFormat::Chaco => sparsemat::io::read_chaco_str(payload).map_err(|e| fatal(&e)),
            MatrixFormat::HarwellBoeing => sparsemat::io::read_harwell_boeing_str(payload)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
        },
        MatrixSource::Path(path) => match MatrixFormat::from_path(path) {
            MatrixFormat::MatrixMarket => sparsemat::io::read_matrix_market(path)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
            MatrixFormat::Chaco => sparsemat::io::read_chaco(path).map_err(|e| fatal(&e)),
            MatrixFormat::HarwellBoeing => sparsemat::io::read_harwell_boeing(path)
                .map_err(|e| fatal(&e))
                .and_then(from_csr),
        },
    }
}

/// Worker-side execution: parse, consult the cache, order, record metrics.
fn execute_order(shared: &Shared, req: &OrderRequest) -> OrderOutcome {
    let t0 = Instant::now();
    let g = match load_pattern(&req.source) {
        Ok(g) => g,
        Err(e) => {
            shared.metrics.inc(&shared.metrics.errors);
            return Err(e);
        }
    };
    let cached = shared.cache.lock().unwrap().get(&g, req.alg);
    let (ordering, cache_hit) = match cached {
        Some(o) => {
            shared.metrics.inc(&shared.metrics.cache_hits);
            (o, true)
        }
        None => {
            shared.metrics.inc(&shared.metrics.cache_misses);
            // Clamp the client-supplied thread count to the machine's actual
            // parallelism: `0` keeps its "all cores" meaning, anything else
            // is capped so a hostile request can't make the server spawn an
            // unbounded number of OS threads. (Decode already rejects values
            // above `MAX_REQUEST_THREADS` as malformed.)
            let threads = match req.threads.unwrap_or(shared.solver_threads) {
                0 => 0,
                t => t.min(sparsemat::par::available_threads()),
            };
            let solver = se_order::SolverOpts::with_threads(threads);
            let o = match se_order::order_with(&g, req.alg, &solver) {
                Ok(o) => o,
                Err(e) => {
                    shared.metrics.inc(&shared.metrics.errors);
                    return Err(ErrorResponse::fatal(format!(
                        "{} ordering failed: {e}",
                        req.alg.name()
                    )));
                }
            };
            shared.cache.lock().unwrap().insert(&g, req.alg, &o);
            (o, false)
        }
    };
    let micros = t0.elapsed().as_micros() as u64;
    shared.metrics.record_latency(req.alg.name(), micros);
    Ok(OrderResponse {
        alg: req.alg.name().to_string(),
        n: g.n(),
        nnz: g.nnz_lower_with_diagonal(),
        stats: ordering.stats,
        perm: req.include_perm.then(|| ordering.perm.order().to_vec()),
        cache_hit,
        micros,
    })
}
