//! Composition root of the `spectral-orderd` TCP server.
//!
//! Wires the three layers together: [`crate::transport`] accepts sockets
//! and enforces the connection limit, [`crate::session`] speaks the
//! protocol per connection, and [`crate::engine`] computes orderings on a
//! bounded worker pool behind the sharded (optionally persistent) cache.
//! This module only holds the configuration and the thread that ties their
//! lifetimes together.

use crate::engine::Engine;
use crate::metrics::Metrics;
use se_faults::FaultPlane;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads computing orderings.
    pub workers: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Byte budget of the content-addressed ordering cache, split evenly
    /// across its shards.
    pub cache_budget_bytes: usize,
    /// Key-range shards of the ordering cache (≥ 1); more shards means less
    /// lock contention between concurrent requests.
    pub cache_shards: usize,
    /// Spill directory for cache persistence; `None` keeps the cache purely
    /// in memory. Entries in the directory are reloaded at startup.
    pub cache_dir: Option<PathBuf>,
    /// On-disk byte budget for the spill directory; `None` leaves the
    /// directory bounded only by the in-memory budget's evictions. When
    /// set, inserting a spill file deletes the oldest files first until the
    /// directory fits the budget again.
    pub cache_dir_budget: Option<u64>,
    /// Maximum simultaneously connected clients; connections beyond the
    /// limit get one retriable `server busy` error line and are closed.
    pub max_conns: usize,
    /// Default per-request wall-clock timeout (ms); requests may override.
    pub default_timeout_ms: u64,
    /// Default solver threads per ordering job (`0` = all cores); requests
    /// may override with their `"threads"` field. Orderings are bit-identical
    /// for every value, so this only affects wall-clock time — which is why
    /// the cache key deliberately ignores it. Effective only with the
    /// `parallel` feature; otherwise every job runs serially.
    pub solver_threads: usize,
    /// Emit one log line per completed ORDER (id, algorithm, n/nnz, cache
    /// hit/miss, total µs) on stderr.
    pub log_requests: bool,
    /// Deterministic fault-injection plane threaded through the engine,
    /// the solvers and the spill writer. [`FaultPlane::disabled`] (the
    /// default) is a strict no-op: responses are bit-identical to a build
    /// without the plane.
    pub faults: FaultPlane,
    /// Per-client token-bucket rate limit as `(requests_per_second,
    /// burst)`; `None` disables limiting. ORDER costs one token, BATCH one
    /// per member; a client that runs dry gets a fatal `rate limited`
    /// error line.
    pub rate_limit: Option<(u64, u64)>,
    /// Per-connection socket read/write timeout (ms); `None` waits
    /// forever. Bounds how long a slow-loris client can pin a connection
    /// slot while trickling bytes.
    pub io_timeout_ms: Option<u64>,
    /// Event-loop threads for the reactor transport (clamped to ≥ 1). Each
    /// loop multiplexes its share of the connections with `poll(2)`, so
    /// even one thread serves thousands of idle keep-alive connections.
    pub reactor_threads: usize,
    /// Serve with the legacy thread-per-connection transport instead of
    /// the reactor. That path speaks protocol v1 only — kept for A/B
    /// comparison (responses must stay bit-identical) and as an escape
    /// hatch.
    pub legacy_transport: bool,
    /// Mesh peers as `host:port` strings (`--peers`). Empty (the default)
    /// runs a plain single node. When non-empty, this node joins a
    /// consistent-hash ring ([`crate::ring`]) together with the peers and
    /// its own bound address, forwards ORDER requests for keys another
    /// peer owns, and replicates its own hot entries to successors. Every
    /// member must be started with the same textual addresses (each
    /// omitting or including itself — the node's own bound address is
    /// always added) or the ring views will disagree. Because the bound
    /// address *is* the node's ring identity, a mesh member must bind the
    /// routable address its peers list — [`serve`] refuses `--peers`
    /// combined with an unspecified bind address (`0.0.0.0`/`[::]`).
    pub peers: Vec<String>,
    /// Mesh replication factor: entries this node owns are pushed to the
    /// `replicas - 1` ring successors after the owner (so `1`, the
    /// default, keeps a single copy and `2` means owner + one replica).
    /// Clamped to ≥ 1; ignored without peers.
    pub replicas: usize,
    /// Dial deadline for one peer connection, ms
    /// (`--peer-dial-timeout-ms`, default 250). Bounds how long a
    /// blackholed peer can stall a forward, a replication push or a
    /// heartbeat before the mesh moves on.
    pub peer_dial_timeout_ms: u64,
    /// Socket read/write deadline on peer connections, ms
    /// (`--peer-io-timeout-ms`, default 2000). Wider than the dial
    /// deadline so a forwarded cache *miss* has time to compute at the
    /// owner; also the deadline on heartbeat and membership exchanges.
    pub peer_io_timeout_ms: u64,
    /// Failure-detector heartbeat period, ms (`--peer-heartbeat-ms`,
    /// default 1000). Each round PINGs every known member with seeded
    /// jitter; suspicion windows are measured against the acks.
    pub peer_heartbeat_ms: u64,
    /// Silence before an `Alive` member turns `Suspect`, ms
    /// (`--peer-suspect-after-ms`, default 3000 — three missed
    /// heartbeats at the default period).
    pub peer_suspect_after_ms: u64,
    /// Silence before a `Suspect` member turns `Dead`, ms
    /// (`--peer-dead-after-ms`, default 10000). Clamped to at least the
    /// suspect window.
    pub peer_dead_after_ms: u64,
    /// Run the anti-entropy digest exchange every N heartbeat rounds
    /// (default 8); 0 disables anti-entropy.
    pub antientropy_every: u32,
    /// Hinted-handoff queue depth per unreachable peer (default 512);
    /// past the cap the oldest hint is dropped and counted.
    pub hint_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
            queue_capacity: 64,
            cache_budget_bytes: 32 << 20,
            cache_shards: 8,
            cache_dir: None,
            cache_dir_budget: None,
            max_conns: 1024,
            default_timeout_ms: 30_000,
            solver_threads: 1,
            log_requests: false,
            faults: FaultPlane::disabled(),
            rate_limit: None,
            io_timeout_ms: None,
            reactor_threads: 1,
            legacy_transport: false,
            peers: Vec::new(),
            replicas: 1,
            peer_dial_timeout_ms: 250,
            peer_io_timeout_ms: 2_000,
            peer_heartbeat_ms: 1_000,
            peer_suspect_after_ms: 3_000,
            peer_dead_after_ms: 10_000,
            antientropy_every: 8,
            hint_cap: crate::hints::DEFAULT_HINT_CAP,
        }
    }
}

/// A running server; dropping the handle does not stop it — send SHUTDOWN.
pub struct ServerHandle {
    engine: Arc<Engine>,
    addr: SocketAddr,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with the server).
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// The engine (shared with the server; exposed for tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Blocks until the accept loop exits (i.e. after SHUTDOWN).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds `cfg.addr`, builds the engine (loading any persisted cache), and
/// starts serving in background threads.
///
/// The default transport is the `se-reactor` event loop
/// ([`crate::rsession`]); `cfg.legacy_transport` selects the original
/// thread-per-connection loop ([`crate::session`]) instead. Both answer
/// protocol v1 requests with bit-identical bytes.
pub fn serve(cfg: Config) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // A mesh member's ring identity is its textual bound address, which
    // its peers must be able to list verbatim. An unspecified bind
    // (0.0.0.0 / [::]) can never appear in anyone's --peers, so the node
    // would join as a phantom member, ring views would disagree, and it
    // could forward to itself over the network. Refuse outright.
    if !cfg.peers.is_empty() && addr.ip().is_unspecified() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "--peers requires a routable --addr: this node would join the ring as \
                 \"{addr}\", which no peer can list; bind the address the peers know it by"
            ),
        ));
    }
    let engine = Arc::new(Engine::new(&cfg, addr)?);
    // With a mesh configured, announce/warm/heartbeat in the background;
    // a plain single node spawns nothing.
    engine.start_mesh_tasks(&cfg);
    let accept_engine = Arc::clone(&engine);
    let max_conns = cfg.max_conns.max(1);
    let rate = cfg
        .rate_limit
        .map(|(rps, burst)| Arc::new(crate::transport::RateLimiter::new(rps, burst)));
    let io_timeout = cfg.io_timeout_ms.map(Duration::from_millis);
    let accept_thread = if cfg.legacy_transport {
        std::thread::Builder::new()
            .name("orderd-accept".to_string())
            .spawn(move || {
                crate::transport::accept_loop(listener, accept_engine, max_conns, rate, io_timeout)
            })
            .expect("spawn accept thread")
    } else {
        let rcfg = se_reactor::ReactorConfig {
            threads: cfg.reactor_threads.max(1),
            max_conns,
            io_timeout,
            busy_line: busy_line(),
            wakeups: Some(Arc::clone(&engine.metrics().reactor_wakeups)),
            rejects: Some(Arc::clone(&engine.metrics().busy_rejections)),
            ..se_reactor::ReactorConfig::default()
        };
        let factory_engine = Arc::clone(&engine);
        let group = se_reactor::start(listener, rcfg, move |token, peer, handle| {
            crate::rsession::Session::new(
                Arc::clone(&factory_engine),
                rate.clone(),
                token,
                peer,
                handle,
            )
        })?;
        // The supervisor preserves the legacy contract: this thread exits
        // only after the SHUTDOWN drain finished and the ack went out.
        std::thread::Builder::new()
            .name("orderd-accept".to_string())
            .spawn(move || {
                group.join();
                accept_engine.wait_shutdown_complete();
            })
            .expect("spawn reactor supervisor thread")
    };
    Ok(ServerHandle {
        engine,
        addr,
        accept_thread,
    })
}

/// The wire bytes an over-cap connection receives before being dropped —
/// the same retriable busy line the legacy transport writes.
fn busy_line() -> Vec<u8> {
    use crate::proto::{encode_response, ErrorResponse, Response};
    let resp = Response::Error(ErrorResponse::retriable(
        "server busy: connection limit reached, retry later",
    ));
    let mut bytes = encode_response(&resp).into_bytes();
    bytes.push(b'\n');
    bytes
}
