//! Hinted handoff: a bounded per-peer queue of cache entries whose
//! replication or drain push could not be delivered.
//!
//! When a replica push or a shutdown handoff fails (target `Suspect`,
//! `Dead`, or just unreachable), the entry — already in the spill-file
//! byte layout ([`crate::persist::encode_entry`]) — is queued here under
//! the target's name instead of being dropped. The moment the failure
//! detector sees the target again ([`Rejoining`]/JOIN), the mesh drains
//! the queue and delivers each hint as an ordinary `REPLICATE`.
//!
//! With a cache directory configured the queue is mirrored to
//! `<dir>/hints/<peer>/NNNNNN-<key>.soc` so hints survive the hinting
//! node's own restart; without one it is memory-only. Each peer's queue
//! is bounded: past the cap the *oldest* hint is dropped (and counted) —
//! newer entries supersede older state, and anti-entropy repairs whatever
//! a dropped hint would have carried.
//!
//! Replay revalidates every hint by decoding it exactly like a spill file
//! ([`crate::persist::load_from`]); bytes damaged at rest (or by the
//! [`sites::PEER_HINT_CORRUPT`] chaos site) are detected here and
//! dropped, never shipped to a peer.
//!
//! [`Rejoining`]: crate::membership::PeerState::Rejoining

use se_faults::{lock_unpoisoned, sites, FaultPlane};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Queued hints per target peer before the oldest is dropped.
pub const DEFAULT_HINT_CAP: usize = 512;

/// One queued hint: the entry's cache key plus its encoded bytes.
#[derive(Debug, Clone)]
struct Hint {
    key: u64,
    bytes: Vec<u8>,
    /// Mirror file, when the log is disk-backed.
    path: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct Queues {
    by_peer: HashMap<String, VecDeque<Hint>>,
    /// Monotonic filename counter so replay order survives a restart.
    next_seq: u64,
}

/// The bounded hint log (see the module docs).
#[derive(Debug)]
pub struct HintLog {
    queues: Mutex<Queues>,
    /// `<cache_dir>/hints`, when disk-backed.
    dir: Option<PathBuf>,
    cap_per_peer: usize,
    faults: FaultPlane,
}

/// A peer name as a directory component: `:` (and any other separator) is
/// not portable in filenames, so it becomes `_`.
fn sanitize(peer: &str) -> String {
    peer.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl HintLog {
    /// An empty log. With `cache_dir` set, hints mirror to
    /// `<cache_dir>/hints/` and any hints already there (from a previous
    /// run) are loaded back. `cap_per_peer` is clamped to ≥ 1.
    pub fn new(cache_dir: Option<&Path>, cap_per_peer: usize, faults: FaultPlane) -> HintLog {
        let dir = cache_dir.map(|d| d.join("hints"));
        let log = HintLog {
            queues: Mutex::new(Queues::default()),
            dir,
            cap_per_peer: cap_per_peer.max(1),
            faults,
        };
        log.reload();
        log
    }

    /// Loads mirrored hints from disk (best-effort; unreadable files are
    /// removed). Queue order is the filename sequence number.
    fn reload(&self) {
        let Some(dir) = &self.dir else { return };
        let Ok(peers) = std::fs::read_dir(dir) else {
            return;
        };
        let mut queues = lock_unpoisoned(&self.queues);
        for peer_dir in peers.flatten() {
            // The raw peer name (a `host:port` that is not filename-safe)
            // is recorded in a `.peer` marker; the directory name is its
            // sanitized form. No marker → fall back to the directory name.
            let peer = std::fs::read_to_string(peer_dir.path().join(".peer"))
                .map(|s| s.trim().to_string())
                .unwrap_or_else(|_| peer_dir.file_name().to_string_lossy().into_owned());
            let Ok(files) = std::fs::read_dir(peer_dir.path()) else {
                continue;
            };
            let mut loaded: Vec<(u64, Hint)> = Vec::new();
            for f in files.flatten() {
                let path = f.path();
                let name = f.file_name().to_string_lossy().into_owned();
                // NNNNNN-<key>.soc
                let Some(stem) = name.strip_suffix(".soc") else {
                    continue;
                };
                let parsed = stem.split_once('-').and_then(|(seq, key)| {
                    Some((seq.parse::<u64>().ok()?, u64::from_str_radix(key, 16).ok()?))
                });
                let (Some((seq, key)), Ok(bytes)) = (parsed, std::fs::read(&path)) else {
                    let _ = std::fs::remove_file(&path);
                    continue;
                };
                queues.next_seq = queues.next_seq.max(seq + 1);
                loaded.push((
                    seq,
                    Hint {
                        key,
                        bytes,
                        path: Some(path),
                    },
                ));
            }
            loaded.sort_by_key(|(seq, _)| *seq);
            let q = queues.by_peer.entry(peer).or_default();
            for (_, h) in loaded {
                q.push_back(h);
            }
        }
    }

    /// Queues one encoded entry for `peer`. Past the per-peer cap the
    /// oldest hint is dropped; returns how many were dropped (0 or 1) so
    /// the caller can count them.
    pub fn queue(&self, peer: &str, key: u64, bytes: Vec<u8>) -> usize {
        let mut queues = lock_unpoisoned(&self.queues);
        let seq = queues.next_seq;
        queues.next_seq += 1;
        let path = self.dir.as_ref().and_then(|d| {
            let peer_dir = d.join(sanitize(peer));
            std::fs::create_dir_all(&peer_dir).ok()?;
            let marker = peer_dir.join(".peer");
            if !marker.exists() {
                let _ = std::fs::write(&marker, peer);
            }
            let path = peer_dir.join(format!("{seq:06}-{key:016x}.soc"));
            std::fs::write(&path, &bytes).ok()?;
            Some(path)
        });
        let q = queues.by_peer.entry(peer.to_string()).or_default();
        q.push_back(Hint { key, bytes, path });
        let mut dropped = 0;
        while q.len() > self.cap_per_peer {
            if let Some(old) = q.pop_front() {
                if let Some(p) = old.path {
                    let _ = std::fs::remove_file(p);
                }
                dropped += 1;
            }
        }
        dropped
    }

    /// Takes every hint queued for `peer`, validating each entry exactly
    /// like a spill file; invalid bytes (possibly damaged through
    /// [`sites::PEER_HINT_CORRUPT`]) are dropped. Returns the deliverable
    /// `(key, bytes)` pairs in queue order plus the dropped count. The
    /// hints leave the log (and disk) here — a failed delivery re-queues
    /// through [`HintLog::queue`].
    pub fn take(&self, peer: &str) -> (Vec<(u64, Vec<u8>)>, usize) {
        let hints = {
            let mut queues = lock_unpoisoned(&self.queues);
            queues.by_peer.remove(peer).unwrap_or_default()
        };
        let mut out = Vec::with_capacity(hints.len());
        let mut dropped = 0;
        for mut h in hints {
            if let Some(p) = &h.path {
                let _ = std::fs::remove_file(p);
            }
            if self.faults.should_fail(sites::PEER_HINT_CORRUPT) {
                self.faults.corrupt(sites::PEER_HINT_CORRUPT, &mut h.bytes);
            }
            match crate::persist::load_from(&h.bytes[..]) {
                Ok(entry) if entry.key == h.key => out.push((h.key, h.bytes)),
                _ => dropped += 1,
            }
        }
        (out, dropped)
    }

    /// Peers with at least one queued hint, sorted.
    pub fn peers_with_hints(&self) -> Vec<String> {
        let queues = lock_unpoisoned(&self.queues);
        let mut out: Vec<String> = queues
            .by_peer
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        out.sort();
        out
    }

    /// Total hints currently queued (the `se_hints_queued` gauge).
    pub fn queued(&self) -> u64 {
        lock_unpoisoned(&self.queues)
            .by_peer
            .values()
            .map(|q| q.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{encode_entry, PersistedEntry};
    use se_faults::FaultPlane;
    use sparsemat::envelope::EnvelopeStats;

    fn entry(key: u64) -> Vec<u8> {
        encode_entry(&PersistedEntry {
            key,
            n: 3,
            adjacency_len: 2,
            stats: EnvelopeStats {
                envelope_size: 1,
                bandwidth: 1,
                envelope_work: 2,
                one_sum: 3,
                two_sum_sq: 4,
            },
            compression_ratio: None,
            degraded: None,
            perm: vec![0, 1, 2],
        })
    }

    #[test]
    fn queue_and_take_preserve_order_and_validate() {
        let log = HintLog::new(None, 8, FaultPlane::disabled());
        assert_eq!(log.queue("p:1", 1, entry(1)), 0);
        assert_eq!(log.queue("p:1", 2, entry(2)), 0);
        log.queue("p:1", 3, b"garbage".to_vec());
        assert_eq!(log.queued(), 3);
        assert_eq!(log.peers_with_hints(), ["p:1"]);

        let (hints, dropped) = log.take("p:1");
        assert_eq!(hints.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(dropped, 1, "the garbage hint is dropped, not shipped");
        assert_eq!(log.queued(), 0);
        assert!(log.take("p:1").0.is_empty());
    }

    #[test]
    fn cap_drops_oldest_first() {
        let log = HintLog::new(None, 2, FaultPlane::disabled());
        assert_eq!(log.queue("p:1", 1, entry(1)), 0);
        assert_eq!(log.queue("p:1", 2, entry(2)), 0);
        assert_eq!(log.queue("p:1", 3, entry(3)), 1, "over cap drops one");
        let (hints, _) = log.take("p:1");
        assert_eq!(hints.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn disk_backed_hints_survive_a_reload() {
        let dir = std::env::temp_dir().join(format!("se-hints-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        {
            let log = HintLog::new(Some(&dir), 8, FaultPlane::disabled());
            log.queue("10.0.0.1:7878", 7, entry(7));
            log.queue("10.0.0.1:7878", 8, entry(8));
        }
        let reloaded = HintLog::new(Some(&dir), 8, FaultPlane::disabled());
        assert_eq!(reloaded.queued(), 2);
        assert_eq!(reloaded.peers_with_hints(), ["10.0.0.1:7878"]);
        let (hints, dropped) = reloaded.take("10.0.0.1:7878");
        assert_eq!(hints.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [7, 8]);
        assert_eq!(dropped, 0);
        // Taking removed the mirror files too.
        let reloaded = HintLog::new(Some(&dir), 8, FaultPlane::disabled());
        assert_eq!(reloaded.queued(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_hints_are_detected_at_replay() {
        let faults = FaultPlane::seeded(11);
        faults.arm(sites::PEER_HINT_CORRUPT);
        let log = HintLog::new(None, 8, faults.clone());
        log.queue("p:1", 5, entry(5));
        let (hints, dropped) = log.take("p:1");
        assert!(hints.is_empty(), "a corrupted hint must never ship");
        assert_eq!(dropped, 1);
        assert!(faults.fired(sites::PEER_HINT_CORRUPT) >= 1);
    }
}
