//! Live mesh membership: the failure detector's suspicion state machine.
//!
//! The mesh of PR 7 froze its member list at startup — a dead peer was
//! retried forever and a new node needed a fleet restart. This module
//! holds each node's *local* view of its peers' liveness, driven by two
//! inputs: heartbeat acks ([`MemberTable::record_ack`], also recorded
//! passively when a peer's PING arrives) and the passage of time
//! ([`MemberTable::tick`]). The state machine per peer:
//!
//! ```text
//!            ack                    no ack for            no ack for
//!   Alive ◄──────── Suspect ◄────── suspect_after   Dead ◄── dead_after
//!     ▲                │                               │
//!     │ ack (again)    └───────────────────────────────┘
//!   Rejoining ◄──────────────────── first ack while Dead
//! ```
//!
//! `Rejoining` is the hint-replay window: the peer is reachable again but
//! has not yet confirmed (a second ack, or an explicit JOIN, promotes it
//! to `Alive`). A JOIN announcement admits a member directly to `Alive`;
//! a LEAVE marks it `Dead` without waiting out the windows.
//!
//! Time comes from a [`Clock`] rather than `Instant::now()` so the unit
//! tests (and the chaos suites' tighter windows) can force every
//! transition deterministically instead of sleeping through them.

use se_faults::lock_unpoisoned;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One peer's liveness as seen from this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerState {
    /// Acking heartbeats inside the suspicion window; fully routable.
    Alive,
    /// Missed acks past `suspect_after`; routed around, not yet given up.
    Suspect,
    /// Missed acks past `dead_after` (or announced LEAVE); the ring routes
    /// to its next live successor and pushes destined for it queue as
    /// hints.
    Dead,
    /// Reachable again after `Dead` but not yet confirmed — the window in
    /// which queued hints replay. A further ack or a JOIN promotes it.
    Rejoining,
}

impl PeerState {
    /// The lowercase wire/metrics name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            PeerState::Alive => "alive",
            PeerState::Suspect => "suspect",
            PeerState::Dead => "dead",
            PeerState::Rejoining => "rejoining",
        }
    }

    /// Stable numeric code for the `se_peer_state` gauge
    /// (0 = alive, 1 = suspect, 2 = dead, 3 = rejoining).
    pub fn code(self) -> u64 {
        match self {
            PeerState::Alive => 0,
            PeerState::Suspect => 1,
            PeerState::Dead => 2,
            PeerState::Rejoining => 3,
        }
    }

    /// Whether the mesh may route work (forwards, replication pushes) to a
    /// peer in this state. `Rejoining` counts: the peer answered recently
    /// and pushing entries to it is exactly how it warms back up.
    pub fn routable(self) -> bool {
        matches!(self, PeerState::Alive | PeerState::Rejoining)
    }
}

/// A monotonic millisecond clock the failure detector reads time from.
///
/// Production uses [`Clock::system`]; tests use [`Clock::manual`] and
/// advance the shared counter to force suspicion transitions without
/// real waiting.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Milliseconds since an arbitrary process-local epoch.
    System(Instant),
    /// Reads a shared counter advanced explicitly by a test.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// The real monotonic clock.
    pub fn system() -> Clock {
        Clock::System(Instant::now())
    }

    /// A test clock plus the handle that advances it (milliseconds).
    pub fn manual() -> (Clock, Arc<AtomicU64>) {
        let t = Arc::new(AtomicU64::new(0));
        (Clock::Manual(Arc::clone(&t)), t)
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        match self {
            Clock::System(epoch) => epoch.elapsed().as_millis() as u64,
            Clock::Manual(t) => t.load(Ordering::SeqCst),
        }
    }
}

/// One observed state change, `(peer, from, to)` — callers turn these into
/// `se_peer_transitions_total` bumps and hint replays.
pub type Transition = (String, PeerState, PeerState);

#[derive(Debug)]
struct Member {
    state: PeerState,
    /// Clock reading of the last ack (or admission).
    last_ack_ms: u64,
    /// The peer's resolved address, feeding the live REPLICATE allowlist.
    ip: Option<IpAddr>,
}

/// This node's member table: peer name → liveness, plus the suspicion
/// windows. Interior mutability so the mesh can share it between the
/// heartbeat thread and request handlers.
#[derive(Debug)]
pub struct MemberTable {
    members: Mutex<HashMap<String, Member>>,
    clock: Clock,
    suspect_after_ms: u64,
    dead_after_ms: u64,
}

impl MemberTable {
    /// A table of the configured peers, all starting `Alive` (a node boots
    /// optimistic; a genuinely dead peer is suspected one window later).
    /// `suspect_after_ms`/`dead_after_ms` are clamped to ≥ 1 and ordered
    /// (`dead` at least `suspect`).
    pub fn new<S: AsRef<str>>(
        peers: &[S],
        ips: &HashMap<String, IpAddr>,
        clock: Clock,
        suspect_after_ms: u64,
        dead_after_ms: u64,
    ) -> MemberTable {
        let now = clock.now_ms();
        let members = peers
            .iter()
            .map(|p| {
                let name = p.as_ref().to_string();
                let ip = ips.get(&name).copied();
                (
                    name,
                    Member {
                        state: PeerState::Alive,
                        last_ack_ms: now,
                        ip,
                    },
                )
            })
            .collect();
        let suspect_after_ms = suspect_after_ms.max(1);
        MemberTable {
            members: Mutex::new(members),
            clock,
            suspect_after_ms,
            dead_after_ms: dead_after_ms.max(suspect_after_ms),
        }
    }

    /// The table's clock (shared with the heartbeat scheduler).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Records a liveness proof for `peer` — a heartbeat ack, or any
    /// request that could only come from it. `Suspect` recovers straight
    /// to `Alive`; `Dead` steps to `Rejoining` (opening the hint-replay
    /// window); a `Rejoining` peer's next proof completes the rejoin.
    /// Unknown peers are ignored (admission is [`MemberTable::admit`]'s
    /// job). Returns the transition, if one happened.
    pub fn record_ack(&self, peer: &str) -> Option<Transition> {
        let now = self.clock.now_ms();
        let mut members = lock_unpoisoned(&self.members);
        let m = members.get_mut(peer)?;
        m.last_ack_ms = now;
        let from = m.state;
        m.state = match from {
            PeerState::Alive | PeerState::Suspect => PeerState::Alive,
            PeerState::Dead => PeerState::Rejoining,
            PeerState::Rejoining => PeerState::Alive,
        };
        (m.state != from).then(|| (peer.to_string(), from, m.state))
    }

    /// Advances the suspicion state machine against the clock: a routable
    /// peer with no ack for `suspect_after` becomes `Suspect`, a `Suspect`
    /// peer with no ack for `dead_after` becomes `Dead`. Returns every
    /// transition that fired.
    pub fn tick(&self) -> Vec<Transition> {
        let now = self.clock.now_ms();
        let mut out = Vec::new();
        let mut members = lock_unpoisoned(&self.members);
        for (name, m) in members.iter_mut() {
            let silent = now.saturating_sub(m.last_ack_ms);
            let next = match m.state {
                PeerState::Alive | PeerState::Rejoining if silent >= self.suspect_after_ms => {
                    PeerState::Suspect
                }
                PeerState::Suspect if silent >= self.dead_after_ms => PeerState::Dead,
                s => s,
            };
            if next != m.state {
                out.push((name.clone(), m.state, next));
                m.state = next;
            }
        }
        out.sort();
        out
    }

    /// Admits `peer` (a JOIN announcement): a new name is inserted
    /// `Alive`, a known one is promoted to `Alive` from any state. `ip`
    /// (the announcement's source address) joins the REPLICATE allowlist.
    /// Returns `(newly_inserted, transition)`.
    pub fn admit(&self, peer: &str, ip: Option<IpAddr>) -> (bool, Option<Transition>) {
        let now = self.clock.now_ms();
        let mut members = lock_unpoisoned(&self.members);
        match members.get_mut(peer) {
            Some(m) => {
                m.last_ack_ms = now;
                if ip.is_some() {
                    m.ip = ip;
                }
                let from = m.state;
                m.state = PeerState::Alive;
                (
                    false,
                    (from != PeerState::Alive).then(|| (peer.to_string(), from, PeerState::Alive)),
                )
            }
            None => {
                members.insert(
                    peer.to_string(),
                    Member {
                        state: PeerState::Alive,
                        last_ack_ms: now,
                        ip,
                    },
                );
                (true, None)
            }
        }
    }

    /// Marks `peer` `Dead` immediately (a LEAVE announcement, or a drain
    /// observed directly). Returns the transition, if any.
    pub fn depart(&self, peer: &str) -> Option<Transition> {
        let mut members = lock_unpoisoned(&self.members);
        let m = members.get_mut(peer)?;
        let from = m.state;
        m.state = PeerState::Dead;
        (from != PeerState::Dead).then(|| (peer.to_string(), from, PeerState::Dead))
    }

    /// The current state of `peer` (`None` for unknown names).
    pub fn state(&self, peer: &str) -> Option<PeerState> {
        lock_unpoisoned(&self.members).get(peer).map(|m| m.state)
    }

    /// Whether `peer` may be routed to ([`PeerState::routable`]); unknown
    /// names are not.
    pub fn routable(&self, peer: &str) -> bool {
        self.state(peer).is_some_and(PeerState::routable)
    }

    /// Every known member with its state, sorted by name — the STATS
    /// `mesh.members` array and the `se_peer_state` gauge.
    pub fn snapshot(&self) -> Vec<(String, PeerState)> {
        let mut out: Vec<(String, PeerState)> = lock_unpoisoned(&self.members)
            .iter()
            .map(|(name, m)| (name.clone(), m.state))
            .collect();
        out.sort();
        out
    }

    /// Known member names, sorted (every state — the heartbeat loop pings
    /// dead peers too; that is how they are discovered alive again).
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = lock_unpoisoned(&self.members).keys().cloned().collect();
        out.sort();
        out
    }

    /// Whether `ip` belongs to any known member — the live REPLICATE
    /// allowlist. Dead members stay allowed: a restarted peer replays its
    /// hints the moment it returns, possibly before its JOIN is processed.
    pub fn allows_ip(&self, ip: IpAddr) -> bool {
        lock_unpoisoned(&self.members)
            .values()
            .any(|m| m.ip == Some(ip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(suspect_ms: u64, dead_ms: u64) -> (MemberTable, Arc<AtomicU64>) {
        let (clock, t) = Clock::manual();
        let ips = HashMap::from([("b:1".to_string(), "10.0.0.2".parse().unwrap())]);
        let peers = ["a:1", "b:1"];
        (
            MemberTable::new(&peers, &ips, clock, suspect_ms, dead_ms),
            t,
        )
    }

    #[test]
    fn silence_walks_alive_suspect_dead_and_acks_recover() {
        let (mt, t) = table(100, 300);
        assert_eq!(mt.state("a:1"), Some(PeerState::Alive));
        assert!(mt.tick().is_empty(), "fresh members are in their window");

        t.store(100, Ordering::SeqCst);
        let trans = mt.tick();
        assert_eq!(trans.len(), 2);
        assert!(trans
            .iter()
            .all(|(_, f, to)| *f == PeerState::Alive && *to == PeerState::Suspect));

        // One peer acks: straight back to Alive. The other stays Suspect
        // until the dead window, then Dead.
        assert_eq!(
            mt.record_ack("a:1"),
            Some(("a:1".to_string(), PeerState::Suspect, PeerState::Alive))
        );
        t.store(300, Ordering::SeqCst);
        let trans = mt.tick();
        assert_eq!(
            trans,
            vec![
                ("a:1".to_string(), PeerState::Alive, PeerState::Suspect),
                ("b:1".to_string(), PeerState::Suspect, PeerState::Dead),
            ]
        );
        assert!(!mt.routable("b:1"));
        assert!(!mt.routable("a:1"), "suspects are routed around too");
    }

    #[test]
    fn a_dead_peer_rejoins_via_rejoining() {
        let (mt, t) = table(10, 20);
        t.store(25, Ordering::SeqCst);
        mt.tick(); // everyone Suspect…
        t.store(50, Ordering::SeqCst);
        mt.tick(); // …then Dead.
        assert_eq!(mt.state("b:1"), Some(PeerState::Dead));

        // First proof of life opens the replay window, the second
        // completes the rejoin.
        assert_eq!(
            mt.record_ack("b:1"),
            Some(("b:1".to_string(), PeerState::Dead, PeerState::Rejoining))
        );
        assert!(mt.routable("b:1"), "rejoining peers take pushes");
        assert_eq!(
            mt.record_ack("b:1"),
            Some(("b:1".to_string(), PeerState::Rejoining, PeerState::Alive))
        );
        assert_eq!(mt.record_ack("b:1"), None, "steady state has no edges");
    }

    #[test]
    fn join_admits_and_leave_departs_immediately() {
        let (mt, _t) = table(10, 20);
        let (new, trans) = mt.admit("c:1", "10.0.0.9".parse().ok());
        assert!(new && trans.is_none());
        assert_eq!(mt.state("c:1"), Some(PeerState::Alive));
        assert!(mt.allows_ip("10.0.0.9".parse().unwrap()));

        assert_eq!(
            mt.depart("c:1"),
            Some(("c:1".to_string(), PeerState::Alive, PeerState::Dead))
        );
        // A JOIN from a Dead member readmits it without the ack dance.
        let (new, trans) = mt.admit("c:1", None);
        assert!(!new);
        assert_eq!(
            trans,
            Some(("c:1".to_string(), PeerState::Dead, PeerState::Alive))
        );
        // Unknown peers never ack into existence.
        assert_eq!(mt.record_ack("ghost:1"), None);
        assert_eq!(mt.state("ghost:1"), None);
    }

    #[test]
    fn allowlist_tracks_the_member_table() {
        let (mt, _t) = table(10, 20);
        assert!(mt.allows_ip("10.0.0.2".parse().unwrap()));
        assert!(!mt.allows_ip("10.0.0.3".parse().unwrap()));
        mt.admit("d:1", "10.0.0.3".parse().ok());
        assert!(mt.allows_ip("10.0.0.3".parse().unwrap()));
        // Departed members keep their allowlist entry: a restarting peer
        // may push hints before its JOIN lands.
        mt.depart("d:1");
        assert!(mt.allows_ip("10.0.0.3".parse().unwrap()));
    }
}
