//! `spectral-orderd` — the persistent ordering daemon.
//!
//! ```text
//! spectral-orderd [options]
//!   --addr HOST:PORT    bind address (default 127.0.0.1:7654; port 0 = ephemeral)
//!   --workers N         worker threads (default: min(cores, 8))
//!   --queue N           bounded job-queue capacity (default 64)
//!   --cache-mb N        ordering-cache budget in MiB (default 32, 0 disables)
//!   --shards N          cache shard count (default 8)
//!   --cache-dir PATH    persist the cache to PATH (reloaded at startup)
//!   --max-conns N       connection limit; excess clients get a retriable
//!                       "server busy" error (default 1024)
//!   --timeout-ms N      default per-request wall-clock timeout (default 30000)
//!   --rate-limit RPS[:BURST]
//!                       per-client-IP token-bucket limit; clients over the
//!                       limit get a fatal "rate limited" error (default: off;
//!                       BURST defaults to 2*RPS)
//!   --io-timeout MS     per-connection socket read/write timeout, bounding
//!                       slow-loris clients (default: off)
//!   --reactor-threads N event-loop threads for the poll-based reactor
//!                       transport (default 1)
//!   --legacy-transport  serve with the old thread-per-connection loop
//!                       (protocol v1 only; kept for A/B comparison)
//!   --peers HOST:PORT,...
//!                       join a consistent-hash mesh with these peers: a
//!                       local cache miss for a key another node owns is
//!                       forwarded there and the response relayed; every
//!                       member must be started with the same textual
//!                       addresses (default: single node)
//!   --replicas N        mesh replication factor; entries this node owns
//!                       are pushed to N-1 ring successors (default 1,
//!                       meaningful only with --peers)
//!   --peer-dial-timeout-ms N
//!                       dial deadline for one peer connection (default 250)
//!   --peer-io-timeout-ms N
//!                       read/write deadline on peer connections, including
//!                       heartbeats and membership exchanges (default 2000)
//!   --peer-heartbeat-ms N
//!                       failure-detector heartbeat period (default 1000)
//!   --peer-suspect-after-ms N
//!                       silence before a member turns Suspect (default 3000)
//!   --peer-dead-after-ms N
//!                       silence before a Suspect member turns Dead and is
//!                       routed around (default 10000)
//!   --antientropy-every N
//!                       run the anti-entropy digest exchange every N
//!                       heartbeat rounds (default 8; 0 disables)
//!   --hint-cap N        hinted-handoff queue depth per unreachable peer;
//!                       past the cap the oldest hint is dropped (default 512)
//! ```
//!
//! The daemon prints `listening on ADDR` once ready and exits after a
//! client sends `SHUTDOWN` (in-flight and queued work finishes first).

use se_service::Config;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: spectral-orderd [--addr HOST:PORT] [--workers N] [--queue N] \
         [--cache-mb N] [--shards N] [--cache-dir PATH] [--max-conns N] \
         [--timeout-ms N] [--rate-limit RPS[:BURST]] [--io-timeout MS] \
         [--reactor-threads N] [--legacy-transport] [--peers HOST:PORT,...] \
         [--replicas N] [--peer-dial-timeout-ms N] [--peer-io-timeout-ms N] \
         [--peer-heartbeat-ms N] [--peer-suspect-after-ms N] \
         [--peer-dead-after-ms N] [--antientropy-every N] [--hint-cap N]"
    );
    ExitCode::from(2)
}

/// Parses `RPS` or `RPS:BURST`; a missing burst defaults to `2 * RPS`.
fn parse_rate_limit(v: &str) -> Option<(u64, u64)> {
    let (rps, burst) = match v.split_once(':') {
        Some((r, b)) => (r.parse().ok()?, b.parse().ok()?),
        None => {
            let r: u64 = v.parse().ok()?;
            (r, r.saturating_mul(2))
        }
    };
    (rps > 0 && burst > 0).then_some((rps, burst))
}

fn main() -> ExitCode {
    let mut cfg = Config {
        addr: "127.0.0.1:7654".to_string(),
        ..Config::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> Option<usize> {
            it.next().and_then(|v| v.parse().ok())
        };
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => cfg.addr = v,
                None => return usage(),
            },
            "--workers" => match num(&mut it) {
                Some(v) if v > 0 => cfg.workers = v,
                _ => return usage(),
            },
            "--queue" => match num(&mut it) {
                Some(v) if v > 0 => cfg.queue_capacity = v,
                _ => return usage(),
            },
            "--cache-mb" => match num(&mut it) {
                Some(v) => cfg.cache_budget_bytes = v << 20,
                None => return usage(),
            },
            "--shards" => match num(&mut it) {
                Some(v) if v > 0 => cfg.cache_shards = v,
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(v) => cfg.cache_dir = Some(v.into()),
                None => return usage(),
            },
            "--max-conns" => match num(&mut it) {
                Some(v) if v > 0 => cfg.max_conns = v,
                _ => return usage(),
            },
            "--timeout-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.default_timeout_ms = v as u64,
                _ => return usage(),
            },
            "--rate-limit" => match it.next().as_deref().and_then(parse_rate_limit) {
                Some(limit) => cfg.rate_limit = Some(limit),
                None => return usage(),
            },
            "--io-timeout" => match num(&mut it) {
                Some(v) if v > 0 => cfg.io_timeout_ms = Some(v as u64),
                _ => return usage(),
            },
            "--reactor-threads" => match num(&mut it) {
                Some(v) if v > 0 => cfg.reactor_threads = v,
                _ => return usage(),
            },
            "--legacy-transport" => cfg.legacy_transport = true,
            "--peers" => match it.next() {
                Some(v) if !v.is_empty() => {
                    cfg.peers = v.split(',').map(str::to_string).collect();
                }
                _ => return usage(),
            },
            "--replicas" => match num(&mut it) {
                Some(v) if v > 0 => cfg.replicas = v,
                _ => return usage(),
            },
            "--peer-dial-timeout-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.peer_dial_timeout_ms = v as u64,
                _ => return usage(),
            },
            "--peer-io-timeout-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.peer_io_timeout_ms = v as u64,
                _ => return usage(),
            },
            "--peer-heartbeat-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.peer_heartbeat_ms = v as u64,
                _ => return usage(),
            },
            "--peer-suspect-after-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.peer_suspect_after_ms = v as u64,
                _ => return usage(),
            },
            "--peer-dead-after-ms" => match num(&mut it) {
                Some(v) if v > 0 => cfg.peer_dead_after_ms = v as u64,
                _ => return usage(),
            },
            "--antientropy-every" => match num(&mut it) {
                Some(v) => cfg.antientropy_every = v as u32,
                None => return usage(),
            },
            "--hint-cap" => match num(&mut it) {
                Some(v) if v > 0 => cfg.hint_cap = v,
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let workers = cfg.workers;
    let handle = match se_service::serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("spectral-orderd: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {} ({} workers)", handle.local_addr(), workers);
    handle.join();
    eprintln!("spectral-orderd: drained and stopped");
    ExitCode::SUCCESS
}
