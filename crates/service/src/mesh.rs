//! Peer mesh: consistent-hash forwarding and replication between daemons.
//!
//! With `--peers` configured, every node places the peer addresses plus
//! its own bound address on one consistent-hash ring ([`crate::ring`])
//! over the cache key space ([`crate::cache::pattern_key`]). Ownership is
//! a pure function of the address list, so the nodes coordinate through
//! nothing but their identical configuration:
//!
//! * **forward** — an ORDER that misses the local cache and whose key
//!   belongs to another node is re-sent to the owner (then, on failure, to
//!   each replica successor) over the protocol-v2 binary-frame client,
//!   and the peer's response — `degraded`, `trace` and all — is relayed
//!   unchanged. Forwarded requests carry `"hop":true` and are answered
//!   strictly locally by the receiver, so disagreeing ring views can cost
//!   an extra computation but never a forwarding loop. If every candidate
//!   peer is unreachable the node simply computes the answer itself —
//!   the mesh degrades to independent single nodes, it never errors.
//! * **replicate** — after the owner computes a cacheable entry, it
//!   pushes the entry (in the spill-file byte layout,
//!   [`crate::persist::encode_entry`]) to the next `replicas - 1` ring
//!   successors via `REPLICATE`, best-effort. Replicas answer reads for
//!   the key from their own cache without forwarding — read fan-out.
//! * **handoff** — a draining node ([`crate::engine::Engine::begin_shutdown`])
//!   ships every spill file in its cache directory to the key's owner on
//!   the ring without itself, so a restart loses no cached work.
//!
//! The fault plane gates both directions: [`sites::PEER_PARTITION`] makes
//! every forward attempt fail as if the peer were unreachable, and
//! [`sites::PEER_REPLICATE`] drops replication pushes — the chaos suite
//! drives the degradation proof through them.

use crate::client::{Client, ClientError, ClientPool, RetryPolicy};
use crate::frame::FrameMode;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::persist::{self, PersistedEntry};
use crate::proto::{OrderRequest, OrderResponse};
use crate::ring::{HashRing, DEFAULT_VNODES};
use se_faults::{lock_unpoisoned, sites, FaultPlane};
use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Idle connections parked per peer.
const MESH_MAX_IDLE: usize = 2;

/// Dial deadline for one peer connection. A *refused* dial fails in
/// microseconds, but a blackholed peer (a real partition drops packets
/// instead of refusing) would otherwise hang the dial for the OS TCP
/// timeout — minutes on Linux. On the mesh's local segment a healthy
/// dial completes in single-digit milliseconds, so a few hundred is
/// already generous. `TimedOut` is not retriable, so a blackholed peer
/// costs one window per forward, then the next candidate is tried.
const MESH_CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Socket read/write deadline on peer connections. Bounds a peer that
/// accepts and then stalls mid-exchange — without it a worker would sit
/// in the forward roundtrip forever. The window is deliberately wider
/// than [`MESH_CONNECT_TIMEOUT`]: a forwarded *hit* answers in
/// milliseconds, but a forwarded miss computes at the owner, and cutting
/// that off too eagerly turns every large-matrix forward into a double
/// compute. Past the window the node falls back down its ladder
/// (next replica, then local compute), which still fits comfortably
/// inside the client's own request timeout.
const MESH_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The retry policy for one forward attempt against one peer. Much
/// tighter than the client-facing default: a dead peer must fail fast so
/// the node falls back to computing locally, not the seconds a
/// human-facing client can afford to wait out. Only cheap failures
/// (refused, reset) are retried at all — a dial or read *timeout*
/// already cost its full window and is not retriable, so the worst-case
/// stall per candidate peer is one window, not `attempts × window`.
fn mesh_retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: 0x5e_3e_5b,
    }
}

/// This node's view of the peer mesh: the ring, its own name on it, and a
/// pool of protocol-v2 connections per peer.
pub struct Mesh {
    ring: HashRing,
    self_name: String,
    replicas: usize,
    /// peer address → connection pool, built lazily on first contact.
    /// The outer map lock and each pool lock are held only for map/list
    /// operations — never across a dial or a roundtrip — so one slow
    /// peer cannot serialize traffic to every other peer behind it.
    pools: Mutex<HashMap<String, Arc<Mutex<ClientPool>>>>,
    /// IP addresses the configured peers resolve to — the only sources a
    /// REPLICATE push is accepted from ([`Mesh::replicate_allowed`]).
    peer_ips: HashSet<IpAddr>,
    retry: RetryPolicy,
    faults: FaultPlane,
}

impl Mesh {
    /// Builds the mesh view from the configured peer list and this node's
    /// bound address. The ring holds `peers ∪ {addr}` (textual addresses,
    /// deduplicated), so a peers list that includes the node itself is
    /// harmless. `replicas` is clamped to ≥ 1. Peer names are resolved
    /// once, best-effort, to build the REPLICATE source allowlist; a name
    /// that does not resolve at startup simply cannot push entries here
    /// until a restart.
    pub fn new(peers: &[String], replicas: usize, addr: SocketAddr, faults: FaultPlane) -> Mesh {
        let self_name = addr.to_string();
        let mut nodes = peers.to_vec();
        nodes.push(self_name.clone());
        // Only the *peers* may push: every legitimate REPLICATE (fan-out
        // or drain handoff) originates at another member, never at this
        // node itself — and including the local IP would blanket-allow
        // every local process on loopback deployments.
        let peer_ips: HashSet<IpAddr> = peers
            .iter()
            .flat_map(|p| p.to_socket_addrs().into_iter().flatten())
            .map(|a| a.ip())
            .collect();
        Mesh {
            ring: HashRing::new(&nodes, DEFAULT_VNODES),
            self_name,
            replicas: replicas.max(1),
            pools: Mutex::new(HashMap::new()),
            peer_ips,
            retry: mesh_retry_policy(),
            faults,
        }
    }

    /// Nodes on the ring (peers + this node).
    pub fn size(&self) -> usize {
        self.ring.len()
    }

    /// This node's ring name (its bound address).
    pub fn self_name(&self) -> &str {
        &self.self_name
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The ring itself (exposed so tests and tools can compute ownership).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Whether this node is the replica set of `key` — the owner or one of
    /// its `replicas - 1` successors. Keys this node is responsible for
    /// are answered locally; everything else forwards on a miss.
    pub fn owns(&self, key: u64) -> bool {
        self.ring
            .replicas(key, self.replicas)
            .iter()
            .any(|n| *n == self.self_name)
    }

    /// Whether this node is the *owner* of `key` (the replication source).
    pub fn is_owner(&self, key: u64) -> bool {
        self.ring.owner(key) == self.self_name
    }

    /// Whether a REPLICATE push from source address `src` is accepted:
    /// the source IP must be one a configured peer resolves to. Ports
    /// are not compared — a peer's push arrives from an ephemeral port,
    /// not its listen port. This is a trust boundary
    /// against *accidental* wrong-answer injection (a stray client
    /// poisoning the cache with a well-formed entry under someone else's
    /// key), not cryptographic peer authentication — the mesh port must
    /// still be firewalled to the mesh segment (see OPERATIONS.md).
    /// `None` (no source address available) is refused.
    pub fn replicate_allowed(&self, src: Option<IpAddr>) -> bool {
        src.is_some_and(|ip| self.peer_ips.contains(&ip))
    }

    /// The STATS `mesh` object.
    pub fn stats_json(&self) -> Json {
        Json::obj(vec![
            ("peers", Json::Num(self.ring.len() as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("self", Json::Str(self.self_name.clone())),
        ])
    }

    /// Forwards `req` for `key` to the owning peer, falling back through
    /// the key's replica successors; returns the first response, relayed
    /// verbatim. `None` means every candidate was unreachable (counted in
    /// `peer_forward_failures`) and the caller should answer locally.
    pub fn forward(
        &self,
        key: u64,
        req: &OrderRequest,
        metrics: &Metrics,
    ) -> Option<OrderResponse> {
        let t0 = Instant::now();
        let mut hopped = req.clone();
        // One hop only: the receiver answers locally no matter what its
        // own ring says. Progress streaming and cancel ids are
        // connection-local concepts and do not survive the hop.
        hopped.hop = true;
        hopped.id = None;
        hopped.progress = false;
        let candidates: Vec<String> = self
            .ring
            .replicas(key, self.replicas)
            .into_iter()
            .filter(|n| *n != self.self_name)
            .map(str::to_string)
            .collect();
        for peer in &candidates {
            match self.try_order(peer, &hopped) {
                Ok(resp) => {
                    metrics.inc(&metrics.peer_forwards);
                    metrics.record_stage_latency("peer_forward", t0.elapsed().as_micros() as u64);
                    return Some(resp);
                }
                Err(_) => continue,
            }
        }
        metrics.inc(&metrics.peer_forward_failures);
        None
    }

    /// Pushes a freshly computed cacheable entry to the `replicas - 1`
    /// ring successors after this node. Call only when this node owns
    /// `entry.key`; a no-op with a replication factor of 1. Best-effort:
    /// failures are counted, never surfaced to the client.
    pub fn replicate(&self, entry: &PersistedEntry, metrics: &Metrics) {
        if self.replicas <= 1 {
            return;
        }
        let bytes = persist::encode_entry(entry);
        for peer in self
            .ring
            .replicas(entry.key, self.replicas)
            .into_iter()
            .filter(|n| *n != self.self_name)
        {
            if self.faults.should_fail(sites::PEER_REPLICATE) {
                metrics.inc(&metrics.peer_replication_failures);
                continue;
            }
            match self.try_replicate(peer, &bytes) {
                Ok(_) => metrics.inc(&metrics.peer_replications),
                Err(_) => metrics.inc(&metrics.peer_replication_failures),
            }
        }
    }

    /// Ships every entry to the owner of its key on the ring *without*
    /// this node — the drain path of a graceful shutdown. Returns how many
    /// entries were accepted by their new owner.
    pub fn handoff(&self, entries: Vec<PersistedEntry>, metrics: &Metrics) -> usize {
        let mut shipped = 0usize;
        for entry in entries {
            let Some(target) = self.ring.owner_excluding(entry.key, &self.self_name) else {
                continue;
            };
            let target = target.to_string();
            let bytes = persist::encode_entry(&entry);
            match self.try_replicate(&target, &bytes) {
                Ok(_) => {
                    shipped += 1;
                    metrics.inc(&metrics.peer_replications);
                }
                Err(_) => metrics.inc(&metrics.peer_replication_failures),
            }
        }
        shipped
    }

    /// One ORDER against one peer, retried under the mesh policy while
    /// the failure is retriable. A simulated partition
    /// ([`sites::PEER_PARTITION`]) fails each attempt before it dials.
    fn try_order(&self, peer: &str, req: &OrderRequest) -> Result<OrderResponse, ClientError> {
        let delays = self.retry.delays();
        let mut attempt = 0usize;
        loop {
            let result = if self.faults.should_fail(sites::PEER_PARTITION) {
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("injected partition toward {peer}"),
                )))
            } else {
                self.checkout(peer).and_then(|mut client| {
                    let resp = client.order(req.clone())?;
                    self.checkin(peer, client);
                    Ok(resp)
                })
            };
            match result {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retriable() && attempt < delays.len() => {
                    std::thread::sleep(delays[attempt]);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One REPLICATE push against one peer (single attempt — replication
    /// is best-effort by design).
    fn try_replicate(&self, peer: &str, bytes: &[u8]) -> Result<bool, ClientError> {
        let mut client = self.checkout(peer)?;
        let stored = client.replicate(bytes)?;
        self.checkin(peer, client);
        Ok(stored)
    }

    /// An idle pooled connection to `peer`, or a freshly dialed one. No
    /// lock is ever held across the dial (or the name resolution a cold
    /// pool needs): the map lock covers only the lookup/insert, the pool
    /// lock only the idle-list pop, and the dial itself — bounded by
    /// [`MESH_CONNECT_TIMEOUT`] — runs lock-free, so one unreachable peer
    /// cannot block forwards and replications to every other peer.
    fn checkout(&self, peer: &str) -> Result<Client, ClientError> {
        let pool = {
            let pools = lock_unpoisoned(&self.pools);
            pools.get(peer).map(Arc::clone)
        };
        let pool = match pool {
            Some(pool) => pool,
            None => {
                // Resolve the peer name with no lock held, then publish
                // the pool (first inserter wins a racing build).
                let fresh = ClientPool::new(peer, FrameMode::Binary, MESH_MAX_IDLE)?
                    .with_timeouts(MESH_CONNECT_TIMEOUT, MESH_IO_TIMEOUT);
                let mut pools = lock_unpoisoned(&self.pools);
                Arc::clone(
                    pools
                        .entry(peer.to_string())
                        .or_insert_with(|| Arc::new(Mutex::new(fresh))),
                )
            }
        };
        let dialer = {
            let mut pool = lock_unpoisoned(&pool);
            match pool.pop_idle() {
                Some(client) => return Ok(client),
                None => pool.dialer(),
            }
        };
        dialer.dial()
    }

    /// Parks a connection that completed its roundtrip cleanly. Failed
    /// connections are simply dropped — the next checkout redials.
    fn checkin(&self, peer: &str, client: Client) {
        let pool = {
            let pools = lock_unpoisoned(&self.pools);
            pools.get(peer).map(Arc::clone)
        };
        if let Some(pool) = pool {
            lock_unpoisoned(&pool).put(client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_faults::FaultPlane;

    fn mesh(replicas: usize) -> Mesh {
        Mesh::new(
            &["10.0.0.1:7878".to_string(), "10.0.0.2:7878".to_string()],
            replicas,
            "10.0.0.3:7878".parse().unwrap(),
            FaultPlane::disabled(),
        )
    }

    #[test]
    fn ring_contains_self_and_ownership_partitions() {
        let m = mesh(1);
        assert_eq!(m.size(), 3);
        assert_eq!(m.self_name(), "10.0.0.3:7878");
        let owned = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .filter(|&k| m.owns(k))
            .count();
        assert!(owned > 1_000 && owned < 9_000, "owned {owned} of 10000");
        // With replicas = ring size, every node is responsible for
        // everything.
        let all = mesh(3);
        assert!((0..1_000u64).all(|k| all.owns(k)));
    }

    #[test]
    fn owner_and_replica_responsibility_agree_with_the_ring() {
        let m = mesh(2);
        for key in (0..5_000u64).map(|i| i.wrapping_mul(0x517cc1b727220a95)) {
            let reps = m.ring().replicas(key, 2);
            assert_eq!(m.owns(key), reps.contains(&m.self_name()));
            assert_eq!(m.is_owner(key), reps[0] == m.self_name());
        }
    }

    #[test]
    fn stats_json_names_the_mesh() {
        let m = mesh(2);
        let s = m.stats_json();
        assert_eq!(s.get("peers").and_then(Json::as_u64), Some(3));
        assert_eq!(s.get("replicas").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("self").and_then(Json::as_str), Some("10.0.0.3:7878"));
    }

    #[test]
    fn replicate_allowed_only_for_peer_source_ips() {
        let m = mesh(2);
        // Only the configured peers may push entries.
        assert!(m.replicate_allowed("10.0.0.1".parse().ok()));
        assert!(m.replicate_allowed("10.0.0.2".parse().ok()));
        // Anyone else — this node's own address (no legitimate flow
        // replicates to self), strangers, or an unknown-source
        // connection — is refused, ports notwithstanding.
        assert!(!m.replicate_allowed("10.0.0.3".parse().ok()));
        assert!(!m.replicate_allowed("10.0.0.4".parse().ok()));
        assert!(!m.replicate_allowed("127.0.0.1".parse().ok()));
        assert!(!m.replicate_allowed(None));
    }

    #[test]
    fn forward_with_no_reachable_peer_reports_failure() {
        // Ports 1/2 on loopback refuse immediately; forward must return
        // None (fall back to local compute) and count the failure.
        let m = Mesh::new(
            &["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            2,
            "127.0.0.1:3".parse().unwrap(),
            FaultPlane::disabled(),
        );
        let metrics = Metrics::new();
        let req = OrderRequest::inline_mtx(se_order::Algorithm::Rcm, "x");
        let key = 42u64;
        if !m.owns(key) {
            assert!(m.forward(key, &req, &metrics).is_none());
            assert_eq!(
                metrics
                    .snapshot(0, 0, &[], false)
                    .get("peer_forward_failures")
                    .and_then(Json::as_u64),
                Some(1)
            );
        }
    }
}
