//! Peer mesh: consistent-hash forwarding, replication and self-healing
//! membership between daemons.
//!
//! With `--peers` configured, every node places the peer addresses plus
//! its own bound address on one consistent-hash ring ([`crate::ring`])
//! over the cache key space ([`crate::cache::pattern_key`]). Ownership is
//! a pure function of the address list, so the nodes coordinate through
//! nothing but their identical configuration:
//!
//! * **forward** — an ORDER that misses the local cache and whose key
//!   belongs to another node is re-sent to the owner (then, on failure, to
//!   each replica successor) over the protocol-v2 binary-frame client,
//!   and the peer's response — `degraded`, `trace` and all — is relayed
//!   unchanged. Forwarded requests carry `"hop":true` and are answered
//!   strictly locally by the receiver, so disagreeing ring views can cost
//!   an extra computation but never a forwarding loop. If every candidate
//!   peer is unreachable the node simply computes the answer itself —
//!   the mesh degrades to independent single nodes, it never errors.
//! * **replicate** — after the owner computes a cacheable entry, it
//!   pushes the entry (in the spill-file byte layout,
//!   [`crate::persist::encode_entry`]) to the next `replicas - 1` ring
//!   successors via `REPLICATE`, best-effort. Replicas answer reads for
//!   the key from their own cache without forwarding — read fan-out.
//! * **handoff** — a draining node ([`crate::engine::Engine::begin_shutdown`])
//!   walks each spill file's successor list on the ring without itself
//!   and ships the entry to the first live taker; entries nobody could
//!   take are parked as hints instead of dropped.
//!
//! Unlike the static mesh this grew out of, the member list is **live**:
//!
//! * every node heartbeats every known member (`PING` over the same
//!   pooled peer connections, [`Mesh::heartbeat_round`]) and runs the
//!   acks through the suspicion state machine of [`crate::membership`] —
//!   `Alive → Suspect → Dead → Rejoining`. Routing ([`Mesh::owns`],
//!   [`Mesh::forward`]) skips members that are not
//!   [routable](crate::membership::PeerState::routable), so survivors
//!   adopt a dead peer's key range until it returns;
//! * a (re)starting node announces itself with `JOIN`
//!   ([`Mesh::announce`]), learns the admitting member's view of the
//!   mesh, and pulls the cached entries it now owns from its peers
//!   (`WARM`, [`Mesh::pull_warm`]). `LEAVE` departs cleanly; a crash is
//!   discovered by the suspicion windows instead;
//! * a replication or handoff push that cannot be delivered parks in a
//!   bounded, disk-backed hint log ([`crate::hints`]) keyed by the target
//!   and replays as ordinary `REPLICATE`s when the target is routable
//!   again ([`Mesh::replay_hints`]);
//! * periodic anti-entropy (`SYNC`, driven by the engine's heartbeat
//!   loop) exchanges per-shard digests of the key ranges two nodes share
//!   and re-pushes whatever a replica is missing — the backstop for
//!   dropped hints and missed windows.
//!
//! The fault plane gates every direction: [`sites::PEER_PARTITION`] makes
//! forward attempts fail as if the peer were unreachable,
//! [`sites::PEER_REPLICATE`] drops replication pushes,
//! [`sites::PEER_HEARTBEAT_DROP`] suppresses outgoing heartbeats and
//! [`sites::PEER_HINT_CORRUPT`] flips bits in stored hints — the chaos
//! suite drives the self-healing proof through them.

use crate::client::{Client, ClientError, ClientPool, RetryPolicy};
use crate::frame::FrameMode;
use crate::hints::{HintLog, DEFAULT_HINT_CAP};
use crate::json::Json;
use crate::membership::{Clock, MemberTable, Transition};
use crate::metrics::Metrics;
use crate::persist::{self, PersistedEntry};
use crate::proto::{OrderRequest, OrderResponse};
use crate::ring::{HashRing, DEFAULT_VNODES};
use se_faults::{lock_unpoisoned, sites, FaultPlane};
use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Idle connections parked per peer.
const MESH_MAX_IDLE: usize = 2;

/// The retry policy for one forward attempt against one peer. Much
/// tighter than the client-facing default: a dead peer must fail fast so
/// the node falls back to computing locally, not the seconds a
/// human-facing client can afford to wait out. Only cheap failures
/// (refused, reset) are retried at all — a dial or read *timeout*
/// already cost its full window and is not retriable, so the worst-case
/// stall per candidate peer is one window, not `attempts × window`.
fn mesh_retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: 0x5e_3e_5b,
    }
}

/// First resolved address of a `host:port` member name, best-effort.
fn resolve_ip(name: &str) -> Option<IpAddr> {
    name.to_socket_addrs().ok()?.next().map(|a| a.ip())
}

/// Everything about a mesh that operators tune; bundled so
/// [`Mesh::with_tuning`] does not take nine positional arguments.
/// [`MeshTuning::default`] matches the documented serve-flag defaults.
#[derive(Debug, Clone)]
pub struct MeshTuning {
    /// Dial deadline for one peer connection (`--peer-dial-timeout-ms`).
    /// A *refused* dial fails in microseconds, but a blackholed peer (a
    /// real partition drops packets instead of refusing) would otherwise
    /// hang the dial for the OS TCP timeout — minutes on Linux. On the
    /// mesh's local segment a healthy dial completes in single-digit
    /// milliseconds, so a few hundred is already generous.
    pub dial_timeout: Duration,
    /// Socket read/write deadline on peer connections
    /// (`--peer-io-timeout-ms`). Bounds a peer that accepts and then
    /// stalls mid-exchange. Deliberately wider than the dial deadline: a
    /// forwarded *hit* answers in milliseconds, but a forwarded miss
    /// computes at the owner, and cutting that off too eagerly turns
    /// every large-matrix forward into a double compute. The same
    /// deadline bounds heartbeat exchanges.
    pub io_timeout: Duration,
    /// Silence before an `Alive` member turns `Suspect`
    /// (`--peer-suspect-after-ms`).
    pub suspect_after_ms: u64,
    /// Silence before a `Suspect` member turns `Dead`
    /// (`--peer-dead-after-ms`).
    pub dead_after_ms: u64,
    /// Hints queued per unreachable peer before the oldest is dropped.
    pub hint_cap: usize,
    /// Cache directory whose `hints/` subdirectory mirrors the hint
    /// queues to disk; `None` keeps hints in memory only.
    pub hint_dir: Option<PathBuf>,
    /// Time source for the suspicion windows — [`Clock::manual`] in
    /// tests, [`Clock::system`] everywhere else.
    pub clock: Clock,
}

impl Default for MeshTuning {
    fn default() -> Self {
        MeshTuning {
            dial_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            suspect_after_ms: 3_000,
            dead_after_ms: 10_000,
            hint_cap: DEFAULT_HINT_CAP,
            hint_dir: None,
            clock: Clock::system(),
        }
    }
}

/// This node's view of the peer mesh: the live ring, the member table,
/// its own name, the hint log, and a pool of protocol-v2 connections per
/// peer.
pub struct Mesh {
    /// The consistent-hash ring over the *known* member names (live or
    /// not — liveness filtering happens at routing time, so a flapping
    /// peer does not reshuffle ownership of every key it never touched).
    /// Mutated only by JOIN/LEAVE admissions.
    ring: Mutex<HashRing>,
    self_name: String,
    replicas: usize,
    /// peer address → connection pool, built lazily on first contact.
    /// The outer map lock and each pool lock are held only for map/list
    /// operations — never across a dial or a roundtrip — so one slow
    /// peer cannot serialize traffic to every other peer behind it.
    pools: Mutex<HashMap<String, Arc<Mutex<ClientPool>>>>,
    /// Liveness view of every known peer; also the REPLICATE source
    /// allowlist ([`Mesh::replicate_allowed`]).
    members: MemberTable,
    /// Undeliverable replication/handoff pushes, keyed by target.
    hints: HintLog,
    dial_timeout: Duration,
    io_timeout: Duration,
    retry: RetryPolicy,
    faults: FaultPlane,
}

impl Mesh {
    /// Builds the mesh view from the configured peer list and this node's
    /// bound address, with default [`MeshTuning`]. The ring holds
    /// `peers ∪ {addr}` (textual addresses, deduplicated), so a peers
    /// list that includes the node itself is harmless. `replicas` is
    /// clamped to ≥ 1.
    pub fn new(peers: &[String], replicas: usize, addr: SocketAddr, faults: FaultPlane) -> Mesh {
        Self::with_tuning(peers, replicas, addr, faults, MeshTuning::default())
    }

    /// [`Mesh::new`] with explicit tuning. Peer names are resolved once,
    /// best-effort, to seed the REPLICATE source allowlist; members
    /// admitted later bring their own source address with their JOIN.
    pub fn with_tuning(
        peers: &[String],
        replicas: usize,
        addr: SocketAddr,
        faults: FaultPlane,
        tuning: MeshTuning,
    ) -> Mesh {
        let self_name = addr.to_string();
        let mut nodes = peers.to_vec();
        nodes.push(self_name.clone());
        // Only the *peers* are members: every legitimate REPLICATE
        // (fan-out, drain handoff, hint replay) originates at another
        // member, never at this node itself — and including the local IP
        // would blanket-allow every local process on loopback
        // deployments.
        let peer_names: Vec<String> = peers.iter().filter(|p| **p != self_name).cloned().collect();
        let peer_ips: HashMap<String, IpAddr> = peer_names
            .iter()
            .filter_map(|p| Some((p.clone(), resolve_ip(p)?)))
            .collect();
        Mesh {
            ring: Mutex::new(HashRing::new(&nodes, DEFAULT_VNODES)),
            self_name,
            replicas: replicas.max(1),
            pools: Mutex::new(HashMap::new()),
            members: MemberTable::new(
                &peer_names,
                &peer_ips,
                tuning.clock,
                tuning.suspect_after_ms,
                tuning.dead_after_ms,
            ),
            hints: HintLog::new(tuning.hint_dir.as_deref(), tuning.hint_cap, faults.clone()),
            dial_timeout: tuning.dial_timeout,
            io_timeout: tuning.io_timeout,
            retry: mesh_retry_policy(),
            faults,
        }
    }

    /// Nodes currently on the ring (known members + this node).
    pub fn size(&self) -> usize {
        lock_unpoisoned(&self.ring).len()
    }

    /// This node's ring name (its bound address).
    pub fn self_name(&self) -> &str {
        &self.self_name
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// A snapshot of the ring (exposed so tests and tools can compute
    /// ownership; owned because the live ring mutates under JOIN/LEAVE).
    pub fn ring(&self) -> HashRing {
        lock_unpoisoned(&self.ring).clone()
    }

    /// The member table (liveness view of every known peer).
    pub fn members(&self) -> &MemberTable {
        &self.members
    }

    /// The key's successor list with every non-routable member skipped
    /// (this node always counts as routable), truncated to `limit`.
    /// This is *the* routing primitive: a dead owner's range falls to
    /// its next live successor everywhere, consistently.
    fn live_route(&self, key: u64, limit: usize) -> Vec<String> {
        let ring = lock_unpoisoned(&self.ring);
        ring.replicas(key, ring.len())
            .into_iter()
            .filter(|n| *n == self.self_name || self.members.routable(n))
            .take(limit)
            .map(str::to_string)
            .collect()
    }

    /// The key's *natural* replica set — ring successors with no
    /// liveness filtering. Hint targets and the anti-entropy range
    /// restriction use this: both sides of a digest exchange must agree
    /// on the shared range regardless of who currently suspects whom.
    pub fn replica_names(&self, key: u64) -> Vec<String> {
        lock_unpoisoned(&self.ring)
            .replicas(key, self.replicas)
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Whether this node is in the live replica set of `key` — the owner
    /// or one of its successors after routing around non-routable
    /// members. Keys this node is responsible for are answered locally;
    /// everything else forwards on a miss.
    pub fn owns(&self, key: u64) -> bool {
        self.live_route(key, self.replicas)
            .contains(&self.self_name)
    }

    /// Whether this node is the live *owner* of `key` (the replication
    /// source). While the natural owner is suspect or dead, its next
    /// live successor holds this role.
    pub fn is_owner(&self, key: u64) -> bool {
        self.live_route(key, 1).first() == Some(&self.self_name)
    }

    /// Whether a REPLICATE push from source address `src` is accepted:
    /// the source IP must belong to a known mesh member (configured, or
    /// admitted by JOIN — the allowlist tracks the live member table).
    /// Ports are not compared — a peer's push arrives from an ephemeral
    /// port, not its listen port. This is a trust boundary against
    /// *accidental* wrong-answer injection (a stray client poisoning the
    /// cache with a well-formed entry under someone else's key), not
    /// cryptographic peer authentication — the mesh port must still be
    /// firewalled to the mesh segment (see OPERATIONS.md). `None` (no
    /// source address available) is refused.
    pub fn replicate_allowed(&self, src: Option<IpAddr>) -> bool {
        src.is_some_and(|ip| self.members.allows_ip(ip))
    }

    /// The STATS `mesh` object, including per-member liveness.
    pub fn stats_json(&self) -> Json {
        let members = self
            .members
            .snapshot()
            .into_iter()
            .map(|(name, state)| {
                Json::obj(vec![
                    ("name", Json::Str(name)),
                    ("state", Json::Str(state.as_str().to_string())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("peers", Json::Num(self.size() as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("self", Json::Str(self.self_name.clone())),
            ("members", Json::Arr(members)),
            ("hints_queued", Json::Num(self.hints.queued() as f64)),
        ])
    }

    /// Total hints currently queued (the `se_hints_queued` gauge).
    pub fn hints_queued(&self) -> u64 {
        self.hints.queued()
    }

    /// Peers with queued hints, sorted.
    pub fn peers_with_hints(&self) -> Vec<String> {
        self.hints.peers_with_hints()
    }

    /// Forwards `req` for `key` to the live owning peer, falling back
    /// through the key's live replica successors; returns the first
    /// response, relayed verbatim. `None` means every candidate was
    /// unreachable (counted in `peer_forward_failures`) and the caller
    /// should answer locally.
    pub fn forward(
        &self,
        key: u64,
        req: &OrderRequest,
        metrics: &Metrics,
    ) -> Option<OrderResponse> {
        let t0 = Instant::now();
        let mut hopped = req.clone();
        // One hop only: the receiver answers locally no matter what its
        // own ring says. Progress streaming and cancel ids are
        // connection-local concepts and do not survive the hop.
        hopped.hop = true;
        hopped.id = None;
        hopped.progress = false;
        let candidates: Vec<String> = self
            .live_route(key, self.replicas)
            .into_iter()
            .filter(|n| *n != self.self_name)
            .collect();
        for peer in &candidates {
            match self.try_order(peer, &hopped) {
                Ok(resp) => {
                    metrics.inc(&metrics.peer_forwards);
                    metrics.record_stage_latency("peer_forward", t0.elapsed().as_micros() as u64);
                    return Some(resp);
                }
                Err(_) => continue,
            }
        }
        metrics.inc(&metrics.peer_forward_failures);
        None
    }

    /// Pushes a freshly computed cacheable entry to the `replicas - 1`
    /// *natural* ring successors after this node. Call only when this
    /// node owns `entry.key`; a no-op with a replication factor of 1.
    /// Best-effort, but no longer lossy: a push to a non-routable or
    /// unreachable successor parks as a hint for that peer instead of
    /// vanishing, and replays when the peer returns.
    pub fn replicate(&self, entry: &PersistedEntry, metrics: &Metrics) {
        if self.replicas <= 1 {
            return;
        }
        let bytes = persist::encode_entry(entry);
        let targets: Vec<String> = {
            let ring = lock_unpoisoned(&self.ring);
            ring.replicas(entry.key, self.replicas)
                .into_iter()
                .filter(|n| *n != self.self_name)
                .map(str::to_string)
                .collect()
        };
        for peer in targets {
            let delivered = !self.faults.should_fail(sites::PEER_REPLICATE)
                && self.members.routable(&peer)
                && self.try_replicate(&peer, &bytes).is_ok();
            if delivered {
                metrics.inc(&metrics.peer_replications);
            } else {
                metrics.inc(&metrics.peer_replication_failures);
                self.queue_hint(&peer, entry.key, bytes.clone(), metrics);
            }
        }
    }

    /// Ships every entry to its new home on the ring without this node —
    /// the drain path of a graceful shutdown. Each entry walks the key's
    /// *live* successor list and lands at the first taker; entries with
    /// no reachable taker park as hints toward the key's natural next
    /// owner instead of being dropped with the warm cache. Returns how
    /// many entries a peer accepted.
    pub fn handoff(&self, entries: Vec<PersistedEntry>, metrics: &Metrics) -> usize {
        let mut shipped = 0usize;
        for entry in entries {
            let bytes = persist::encode_entry(&entry);
            let candidates: Vec<String> = self
                .live_route(entry.key, self.size())
                .into_iter()
                .filter(|n| *n != self.self_name)
                .collect();
            let mut delivered = false;
            for peer in &candidates {
                match self.try_replicate(peer, &bytes) {
                    Ok(_) => {
                        shipped += 1;
                        metrics.inc(&metrics.peer_replications);
                        delivered = true;
                        break;
                    }
                    Err(_) => metrics.inc(&metrics.peer_replication_failures),
                }
            }
            if !delivered {
                let fallback = {
                    let ring = lock_unpoisoned(&self.ring);
                    ring.owner_excluding(entry.key, &self.self_name)
                        .map(str::to_string)
                };
                if let Some(peer) = fallback {
                    self.queue_hint(&peer, entry.key, bytes, metrics);
                }
            }
        }
        shipped
    }

    /// Queues a hint and counts any overflow drop.
    fn queue_hint(&self, peer: &str, key: u64, bytes: Vec<u8>, metrics: &Metrics) {
        for _ in 0..self.hints.queue(peer, key, bytes) {
            metrics.inc(&metrics.hints_dropped);
        }
    }

    /// Replays every hint queued for `peer` as ordinary REPLICATEs.
    /// Corrupt hints are dropped at validation ([`crate::hints`]);
    /// deliveries that fail again re-queue for the next window. Returns
    /// how many hints were delivered.
    pub fn replay_hints(&self, peer: &str, metrics: &Metrics) -> usize {
        let (hints, invalid) = self.hints.take(peer);
        for _ in 0..invalid {
            metrics.inc(&metrics.hints_dropped);
        }
        let mut replayed = 0usize;
        for (key, bytes) in hints {
            let delivered = !self.faults.should_fail(sites::PEER_REPLICATE)
                && self.try_replicate(peer, &bytes).is_ok();
            if delivered {
                replayed += 1;
                metrics.inc(&metrics.hints_replayed);
                metrics.inc(&metrics.peer_replications);
            } else {
                metrics.inc(&metrics.peer_replication_failures);
                self.queue_hint(peer, key, bytes, metrics);
            }
        }
        replayed
    }

    /// One failure-detector round: PING every known member (dead ones
    /// too — that is how a silent restart is discovered), record acks,
    /// then advance the suspicion clock. Returns every state transition
    /// that fired, for the caller to count and to trigger hint replays.
    /// [`sites::PEER_HEARTBEAT_DROP`] suppresses outgoing pings (the
    /// peer then suspects *us*); an armed [`sites::PEER_PARTITION`]
    /// fails them like any other traffic.
    pub fn heartbeat_round(&self) -> Vec<Transition> {
        let mut transitions = Vec::new();
        for peer in self.members.names() {
            if self.faults.should_fail(sites::PEER_HEARTBEAT_DROP)
                || self.faults.should_fail(sites::PEER_PARTITION)
            {
                continue;
            }
            let acked = self
                .checkout(&peer)
                .and_then(|mut client| {
                    let responder = client.ping(&self.self_name)?;
                    self.checkin(&peer, client);
                    Ok(responder)
                })
                .is_ok();
            if acked {
                transitions.extend(self.members.record_ack(&peer));
            }
        }
        transitions.extend(self.members.tick());
        transitions
    }

    /// Announces this node to every known member with JOIN and merges
    /// each admitting member's view of the mesh into this one. Returns
    /// `(members that admitted us, transitions observed)`.
    pub fn announce(&self) -> (usize, Vec<Transition>) {
        let mut admitted_by = 0usize;
        let mut transitions = Vec::new();
        for peer in self.members.names() {
            if self.faults.should_fail(sites::PEER_PARTITION) {
                continue;
            }
            let outcome = self.checkout(&peer).and_then(|mut client| {
                let members = client.join(&self.self_name)?;
                self.checkin(&peer, client);
                Ok(members)
            });
            let Ok(learned) = outcome else { continue };
            admitted_by += 1;
            // A completed JOIN exchange is proof of life for the admitter.
            transitions.extend(self.members.record_ack(&peer));
            for name in learned {
                if name != self.self_name && self.members.state(&name).is_none() {
                    let (_, t) = self.admit(&name, None);
                    transitions.extend(t);
                }
            }
        }
        (admitted_by, transitions)
    }

    /// Tells every routable member this node is leaving (the drain
    /// path). Best-effort; a member that misses the announcement
    /// discovers the departure through its suspicion windows instead.
    pub fn announce_leave(&self) {
        for peer in self.members.names() {
            if !self.members.routable(&peer) {
                continue;
            }
            let _ = self.checkout(&peer).and_then(|mut client| {
                client.leave(&self.self_name)?;
                self.checkin(&peer, client);
                Ok(())
            });
        }
    }

    /// Pulls the cached entries this node now owns from every routable
    /// member (`WARM`) — the warm-up phase of a (re)join. Entries arrive
    /// in the spill byte layout and are decoded here; the caller inserts
    /// them into its cache.
    pub fn pull_warm(&self) -> Vec<PersistedEntry> {
        let mut out = Vec::new();
        for peer in self.members.names() {
            if !self.members.routable(&peer) {
                continue;
            }
            let pulled = self.checkout(&peer).and_then(|mut client| {
                let entries = client.warm(&self.self_name)?;
                self.checkin(&peer, client);
                Ok(entries)
            });
            let Ok(entries) = pulled else { continue };
            for bytes in entries {
                if let Ok(entry) = persist::load_from(&bytes[..]) {
                    out.push(entry);
                }
            }
        }
        out
    }

    /// Admits `peer` into the member table and onto the ring (a received
    /// JOIN, or a member learned from one). `ip` is the announcement's
    /// source address when known; otherwise the name is resolved
    /// best-effort. Returns `(newly_known, transition)`.
    pub fn admit(&self, peer: &str, ip: Option<IpAddr>) -> (bool, Option<Transition>) {
        if peer == self.self_name {
            return (false, None);
        }
        let (new, transition) = self.members.admit(peer, ip.or_else(|| resolve_ip(peer)));
        lock_unpoisoned(&self.ring).add(peer);
        (new, transition)
    }

    /// Marks `peer` departed (a received LEAVE): immediately `Dead` in
    /// the member table and off the ring, so its range reassigns now
    /// rather than a suspicion window later. The member stays known —
    /// still heartbeated, still on the allowlist — so a later restart is
    /// discovered and re-admitted.
    pub fn depart(&self, peer: &str) -> Option<Transition> {
        let transition = self.members.depart(peer);
        lock_unpoisoned(&self.ring).remove(peer);
        transition
    }

    /// One anti-entropy digest exchange against `peer`: sends this
    /// node's per-shard `digests` and returns the mismatching shard
    /// indices plus the keys the peer holds there.
    pub fn try_sync(
        &self,
        peer: &str,
        digests: &[u64],
    ) -> Result<(Vec<usize>, Vec<u64>), ClientError> {
        let mut client = self.checkout(peer)?;
        let answer = client.sync(&self.self_name, digests)?;
        self.checkin(peer, client);
        Ok(answer)
    }

    /// Pushes one already-encoded entry to `peer` (anti-entropy repair
    /// delivery). Returns whether the peer stored it.
    pub fn push_entry(&self, peer: &str, bytes: &[u8]) -> Result<bool, ClientError> {
        self.try_replicate(peer, bytes)
    }

    /// One ORDER against one peer, retried under the mesh policy while
    /// the failure is retriable. A simulated partition
    /// ([`sites::PEER_PARTITION`]) fails each attempt before it dials.
    fn try_order(&self, peer: &str, req: &OrderRequest) -> Result<OrderResponse, ClientError> {
        let delays = self.retry.delays();
        let mut attempt = 0usize;
        loop {
            let result = if self.faults.should_fail(sites::PEER_PARTITION) {
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("injected partition toward {peer}"),
                )))
            } else {
                self.checkout(peer).and_then(|mut client| {
                    let resp = client.order(req.clone())?;
                    self.checkin(peer, client);
                    Ok(resp)
                })
            };
            match result {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retriable() && attempt < delays.len() => {
                    std::thread::sleep(delays[attempt]);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One REPLICATE push against one peer (single attempt — replication
    /// is best-effort by design; what fails becomes a hint).
    fn try_replicate(&self, peer: &str, bytes: &[u8]) -> Result<bool, ClientError> {
        let mut client = self.checkout(peer)?;
        let stored = client.replicate(bytes)?;
        self.checkin(peer, client);
        Ok(stored)
    }

    /// An idle pooled connection to `peer`, or a freshly dialed one. No
    /// lock is ever held across the dial (or the name resolution a cold
    /// pool needs): the map lock covers only the lookup/insert, the pool
    /// lock only the idle-list pop, and the dial itself — bounded by the
    /// configured dial timeout — runs lock-free, so one unreachable peer
    /// cannot block forwards and replications to every other peer.
    fn checkout(&self, peer: &str) -> Result<Client, ClientError> {
        let pool = {
            let pools = lock_unpoisoned(&self.pools);
            pools.get(peer).map(Arc::clone)
        };
        let pool = match pool {
            Some(pool) => pool,
            None => {
                // Resolve the peer name with no lock held, then publish
                // the pool (first inserter wins a racing build).
                let fresh = ClientPool::new(peer, FrameMode::Binary, MESH_MAX_IDLE)?
                    .with_timeouts(self.dial_timeout, self.io_timeout);
                let mut pools = lock_unpoisoned(&self.pools);
                Arc::clone(
                    pools
                        .entry(peer.to_string())
                        .or_insert_with(|| Arc::new(Mutex::new(fresh))),
                )
            }
        };
        let dialer = {
            let mut pool = lock_unpoisoned(&pool);
            match pool.pop_idle() {
                Some(client) => return Ok(client),
                None => pool.dialer(),
            }
        };
        dialer.dial()
    }

    /// Parks a connection that completed its roundtrip cleanly. Failed
    /// connections are simply dropped — the next checkout redials.
    fn checkin(&self, peer: &str, client: Client) {
        let pool = {
            let pools = lock_unpoisoned(&self.pools);
            pools.get(peer).map(Arc::clone)
        };
        if let Some(pool) = pool {
            lock_unpoisoned(&pool).put(client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::PeerState;
    use se_faults::FaultPlane;
    use sparsemat::envelope::EnvelopeStats;

    fn mesh(replicas: usize) -> Mesh {
        Mesh::new(
            &["10.0.0.1:7878".to_string(), "10.0.0.2:7878".to_string()],
            replicas,
            "10.0.0.3:7878".parse().unwrap(),
            FaultPlane::disabled(),
        )
    }

    fn entry(key: u64) -> PersistedEntry {
        PersistedEntry {
            key,
            n: 3,
            adjacency_len: 2,
            stats: EnvelopeStats {
                envelope_size: 1,
                bandwidth: 1,
                envelope_work: 2,
                one_sum: 3,
                two_sum_sq: 4,
            },
            compression_ratio: None,
            degraded: None,
            perm: vec![0, 1, 2],
        }
    }

    #[test]
    fn ring_contains_self_and_ownership_partitions() {
        let m = mesh(1);
        assert_eq!(m.size(), 3);
        assert_eq!(m.self_name(), "10.0.0.3:7878");
        let owned = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .filter(|&k| m.owns(k))
            .count();
        assert!(owned > 1_000 && owned < 9_000, "owned {owned} of 10000");
        // With replicas = ring size, every node is responsible for
        // everything.
        let all = mesh(3);
        assert!((0..1_000u64).all(|k| all.owns(k)));
    }

    #[test]
    fn owner_and_replica_responsibility_agree_with_the_ring() {
        let m = mesh(2);
        let ring = m.ring();
        for key in (0..5_000u64).map(|i| i.wrapping_mul(0x517cc1b727220a95)) {
            let reps = ring.replicas(key, 2);
            assert_eq!(m.owns(key), reps.contains(&m.self_name()));
            assert_eq!(m.is_owner(key), reps[0] == m.self_name());
        }
    }

    #[test]
    fn dead_members_are_routed_around_and_their_range_adopted() {
        let m = mesh(1);
        // Mark both peers dead (suspicion outcome, not LEAVE — they stay
        // on the ring). Every key now falls to the only live node: self.
        m.members().depart("10.0.0.1:7878");
        m.members().depart("10.0.0.2:7878");
        assert!((0..1_000u64).all(|k| m.owns(k) && m.is_owner(k)));
        // Readmission restores the original partitioning.
        m.admit("10.0.0.1:7878", None);
        m.admit("10.0.0.2:7878", None);
        assert_eq!(m.members().state("10.0.0.1:7878"), Some(PeerState::Alive));
        let owned = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .filter(|&k| m.owns(k))
            .count();
        assert!(owned < 9_000, "dead-range adoption must be reversible");
    }

    #[test]
    fn leave_reassigns_the_range_immediately() {
        let m = mesh(1);
        let ring = m.ring();
        let key = (0..)
            .map(|i: u64| i.wrapping_mul(0x9e3779b97f4a7c15))
            .find(|&k| ring.owner(k) == "10.0.0.1:7878")
            .unwrap();
        assert!(!m.owns(key));
        let t = m.depart("10.0.0.1:7878");
        assert_eq!(
            t,
            Some((
                "10.0.0.1:7878".to_string(),
                PeerState::Alive,
                PeerState::Dead
            ))
        );
        assert_eq!(m.size(), 2, "LEAVE takes the member off the ring");
        // The departed name no longer owns anything; someone live does.
        let ring = m.ring();
        assert_ne!(ring.owner(key), "10.0.0.1:7878");
    }

    #[test]
    fn replicate_to_unroutable_members_parks_hints() {
        let m = mesh(3);
        m.members().depart("10.0.0.1:7878");
        m.members().depart("10.0.0.2:7878");
        let metrics = Metrics::new();
        m.replicate(&entry(42), &metrics);
        // Both natural successors were dead: two hints, no deliveries.
        assert_eq!(m.hints_queued(), 2);
        assert_eq!(
            m.peers_with_hints(),
            vec!["10.0.0.1:7878".to_string(), "10.0.0.2:7878".to_string()]
        );
    }

    #[test]
    fn handoff_with_no_live_taker_parks_a_hint_for_the_next_owner() {
        let m = mesh(1);
        m.members().depart("10.0.0.1:7878");
        m.members().depart("10.0.0.2:7878");
        let metrics = Metrics::new();
        let shipped = m.handoff(vec![entry(7)], &metrics);
        assert_eq!(shipped, 0);
        assert_eq!(m.hints_queued(), 1, "the entry parks instead of dropping");
        let expect = m
            .ring()
            .owner_excluding(7, m.self_name())
            .unwrap()
            .to_string();
        assert_eq!(m.peers_with_hints(), vec![expect]);
    }

    #[test]
    fn stats_json_names_the_mesh() {
        let m = mesh(2);
        let s = m.stats_json();
        assert_eq!(s.get("peers").and_then(Json::as_u64), Some(3));
        assert_eq!(s.get("replicas").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("self").and_then(Json::as_str), Some("10.0.0.3:7878"));
        let members = s.get("members").and_then(Json::as_arr).unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0].get("state").and_then(Json::as_str),
            Some("alive")
        );
        assert_eq!(s.get("hints_queued").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn replicate_allowed_only_for_member_source_ips() {
        let m = mesh(2);
        // Only the configured peers may push entries.
        assert!(m.replicate_allowed("10.0.0.1".parse().ok()));
        assert!(m.replicate_allowed("10.0.0.2".parse().ok()));
        // Anyone else — this node's own address (no legitimate flow
        // replicates to self), strangers, or an unknown-source
        // connection — is refused, ports notwithstanding.
        assert!(!m.replicate_allowed("10.0.0.3".parse().ok()));
        assert!(!m.replicate_allowed("10.0.0.4".parse().ok()));
        assert!(!m.replicate_allowed("127.0.0.1".parse().ok()));
        assert!(!m.replicate_allowed(None));
        // A JOIN-admitted member's source address becomes allowed, and a
        // departed member keeps its entry (hint replay may precede its
        // JOIN after a restart).
        m.admit("10.0.0.9:7878", "10.0.0.9".parse().ok());
        assert!(m.replicate_allowed("10.0.0.9".parse().ok()));
        m.depart("10.0.0.9:7878");
        assert!(m.replicate_allowed("10.0.0.9".parse().ok()));
    }

    #[test]
    fn forward_with_no_reachable_peer_reports_failure() {
        // Ports 1/2 on loopback refuse immediately; forward must return
        // None (fall back to local compute) and count the failure.
        let m = Mesh::new(
            &["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            2,
            "127.0.0.1:3".parse().unwrap(),
            FaultPlane::disabled(),
        );
        let metrics = Metrics::new();
        let req = OrderRequest::inline_mtx(se_order::Algorithm::Rcm, "x");
        let key = 42u64;
        if !m.owns(key) {
            assert!(m.forward(key, &req, &metrics).is_none());
            assert_eq!(
                metrics
                    .snapshot(0, 0, &[], false)
                    .get("peer_forward_failures")
                    .and_then(Json::as_u64),
                Some(1)
            );
        }
    }
}
