//! Blocking TCP client for `spectral-orderd`.
//!
//! Speaks NDJSON by default; [`Client::hello`] negotiates binary
//! permutation frames, after which the client transparently reads the
//! frames following each response line and hands back fully materialized
//! [`OrderResponse`]s — callers never see the framing.

use crate::frame::{read_perm_frame, FrameMode};
use crate::json::Json;
use crate::proto::{
    decode_response, encode_request, ErrorResponse, OrderRequest, OrderResponse, PermPayload,
    ProtoError, Request, Response,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply did not parse.
    Proto(ProtoError),
    /// The server replied, but with an error outcome.
    Server(ErrorResponse),
    /// The server replied with a response of the wrong kind.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "bad server reply: {e}"),
            ClientError::Server(e) => {
                let kind = if e.retriable { "retriable" } else { "fatal" };
                write!(f, "server error ({kind}): {}", e.error)
            }
            ClientError::UnexpectedResponse(want) => {
                write!(f, "unexpected server reply, wanted {want}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a running `spectral-orderd`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    mode: FrameMode,
}

impl Client {
    /// Connects to the daemon (NDJSON mode until [`Client::hello`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            mode: FrameMode::Ndjson,
        })
    }

    /// Negotiates the connection's frame mode; returns the mode the server
    /// acknowledged. `FrameMode::Binary` makes subsequent responses carry
    /// their permutations as binary frames, which this client reads back
    /// transparently.
    pub fn hello(&mut self, frames: FrameMode) -> Result<FrameMode, ClientError> {
        match self.roundtrip(&Request::Hello { frames })? {
            Response::Hello { frames: acked } => {
                self.mode = acked;
                Ok(acked)
            }
            _ => Err(ClientError::UnexpectedResponse("a HELLO ack")),
        }
    }

    /// The frame mode currently in effect.
    pub fn frame_mode(&self) -> FrameMode {
        self.mode
    }

    /// Sends one request line and reads one complete response (the line
    /// plus, in binary mode, every frame its markers announce).
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        writeln!(self.writer, "{}", encode_request(req))?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let mut resp = decode_response(line.trim_end()).map_err(ClientError::Proto)?;
        self.read_frames(&mut resp)?;
        if let Response::Error(e) = resp {
            return Err(ClientError::Server(e));
        }
        Ok(resp)
    }

    /// Replaces every [`PermPayload::Framed`] marker with the permutation
    /// read from the stream, in marker order. A no-op for frameless
    /// responses, so it is also safe in NDJSON mode.
    fn read_frames(&mut self, resp: &mut Response) -> Result<(), ClientError> {
        let mut fill = |o: &mut OrderResponse| -> Result<(), ClientError> {
            if o.perm == Some(PermPayload::Framed) {
                o.perm = Some(PermPayload::Plain(read_perm_frame(&mut self.reader)?));
            }
            Ok(())
        };
        match resp {
            Response::Order(o) => fill(o)?,
            Response::Batch(items) => {
                for item in items.iter_mut().flatten() {
                    fill(item)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Orders one matrix.
    pub fn order(&mut self, req: OrderRequest) -> Result<OrderResponse, ClientError> {
        match self.roundtrip(&Request::Order(req))? {
            Response::Order(r) => Ok(r),
            _ => Err(ClientError::UnexpectedResponse("an ORDER response")),
        }
    }

    /// Orders a batch of matrices in one pipelined roundtrip. Each slot
    /// succeeds or fails independently.
    pub fn order_batch(
        &mut self,
        reqs: Vec<OrderRequest>,
    ) -> Result<Vec<Result<OrderResponse, ErrorResponse>>, ClientError> {
        match self.roundtrip(&Request::Batch(reqs))? {
            Response::Batch(rs) => Ok(rs),
            _ => Err(ClientError::UnexpectedResponse("a BATCH response")),
        }
    }

    /// Fetches the live metrics snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse("a STATS response")),
        }
    }

    /// Fetches the Prometheus-style metrics text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::UnexpectedResponse("a METRICS response")),
        }
    }

    /// Cancels the in-flight ORDER with client-assigned `id` (usually from
    /// a second connection while the first blocks on the ORDER). Returns
    /// whether the id was still pending.
    pub fn cancel(&mut self, id: u64) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Cancel { id })? {
            Response::CancelOk { pending } => Ok(pending),
            _ => Err(ClientError::UnexpectedResponse("a CANCEL ack")),
        }
    }

    /// Asks the server to drain and exit; returns the drained-job count.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk { drained } => Ok(drained),
            _ => Err(ClientError::UnexpectedResponse("a SHUTDOWN ack")),
        }
    }
}
