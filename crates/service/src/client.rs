//! Blocking TCP client for `spectral-orderd`.
//!
//! Speaks NDJSON by default; [`Client::hello`] negotiates binary
//! permutation frames, after which the client transparently reads the
//! frames following each response line and hands back fully materialized
//! [`OrderResponse`]s — callers never see the framing.

use crate::frame::{read_perm_frame, FrameMode};
use crate::json::Json;
use crate::proto::{
    decode_response, decode_tagged_response, encode_request, ErrorResponse, OrderRequest,
    OrderResponse, PermPayload, ProgressFrame, ProtoError, Request, Response,
};
use crate::rsession::PROTO_VERSION;
use se_prng::SmallRng;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply did not parse.
    Proto(ProtoError),
    /// The server replied, but with an error outcome.
    Server(ErrorResponse),
    /// The server replied with a response of the wrong kind.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "bad server reply: {e}"),
            ClientError::Server(e) => {
                let kind = if e.retriable { "retriable" } else { "fatal" };
                write!(f, "server error ({kind}): {}", e.error)
            }
            ClientError::UnexpectedResponse(want) => {
                write!(f, "unexpected server reply, wanted {want}")
            }
        }
    }
}

impl ClientError {
    /// Whether retrying the request on a *fresh* connection can succeed:
    /// the server said so explicitly (`"retriable": true`, e.g. `server
    /// busy` or a queue-full rejection) or the connection itself failed in
    /// a transient way — refused during a restart, reset/aborted by a
    /// dying peer, or torn down mid-exchange (a busy rejection closes the
    /// socket at accept time, so the client's next write sees
    /// `BrokenPipe` and its next read `UnexpectedEof`, depending on who
    /// wins the race). Protocol errors, fatal server errors (including
    /// `rate limited`) and unexpected replies are not retriable.
    pub fn is_retriable(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            ClientError::Server(e) => e.retriable,
            ClientError::Io(e) => matches!(
                e.kind(),
                ErrorKind::ConnectionRefused
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe
                    | ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry policy for [`order_with_retry`]: decorrelated-jitter exponential
/// backoff. The delay before attempt `k+1` is drawn uniformly from
/// `[base, prev * 3]` and capped at `cap`, where `prev` is the previous
/// delay — each client's retry schedule decorrelates from every other's,
/// avoiding the thundering-herd resonance of synchronized exponential
/// backoff, while still growing geometrically in expectation.
///
/// The jitter stream is seeded, so a given `(policy, seed)` pair produces
/// one reproducible schedule — the same determinism contract as the rest
/// of the crate.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Lower bound of every backoff delay.
    pub base: Duration,
    /// Upper bound of every backoff delay.
    pub cap: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x5e_0b_ac_0f,
        }
    }
}

impl RetryPolicy {
    /// The backoff delays this policy would sleep between attempts, in
    /// order (`max_attempts - 1` of them). Deterministic in the seed.
    pub fn delays(&self) -> Vec<Duration> {
        let base = self.base.min(self.cap);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut prev = base;
        (1..self.max_attempts.max(1))
            .map(|_| {
                let hi = (prev.as_secs_f64() * 3.0).max(base.as_secs_f64());
                let secs = if hi > base.as_secs_f64() {
                    rng.gen_range(base.as_secs_f64()..hi)
                } else {
                    base.as_secs_f64()
                };
                prev = Duration::from_secs_f64(secs).min(self.cap);
                prev
            })
            .collect()
    }
}

/// Dials `addr`, negotiates `frames`, and runs one ORDER — retrying on a
/// fresh connection with decorrelated-jitter backoff while the failure is
/// [retriable](ClientError::is_retriable) and attempts remain.
///
/// A fresh connection per attempt is deliberate: the server's busy
/// rejection closes the socket at accept time, so the old connection is
/// useless. Fatal errors (bad input, `rate limited`) and protocol errors
/// surface immediately. CANCEL is intentionally not retried anywhere —
/// re-sending it after an ambiguous failure could cancel an unrelated
/// request that reused the id.
pub fn order_with_retry(
    addr: impl ToSocketAddrs,
    frames: FrameMode,
    req: &OrderRequest,
    policy: &RetryPolicy,
) -> Result<OrderResponse, ClientError> {
    let delays = policy.delays();
    let mut attempt = 0usize;
    loop {
        let result = Client::connect(&addr).and_then(|mut c| {
            c.hello(frames)?;
            c.order(req.clone())
        });
        match result {
            Ok(r) => return Ok(r),
            Err(e) if e.is_retriable() && attempt < delays.len() => {
                std::thread::sleep(delays[attempt]);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A connection to a running `spectral-orderd`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    mode: FrameMode,
    proto: u32,
}

impl Client {
    /// Connects to the daemon (NDJSON mode until [`Client::hello`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with an explicit dial deadline instead of the OS default
    /// (which can be minutes against a blackholed host). The failure kind
    /// is `TimedOut`, which [`ClientError::is_retriable`] deliberately
    /// does not retry — a host that drops packets will eat every attempt.
    pub fn connect_with_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            mode: FrameMode::Ndjson,
            proto: 1,
        })
    }

    /// Sets (or, with `None`, clears) the socket read and write timeouts.
    /// Every subsequent socket operation must make progress within the
    /// window or fails with `TimedOut`/`WouldBlock` — not retriable, so a
    /// stalled server costs one window, never a hung thread. The options
    /// live on the socket itself, so both buffered halves are covered.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Negotiates the connection's frame mode; returns the mode the server
    /// acknowledged. `FrameMode::Binary` makes subsequent responses carry
    /// their permutations as binary frames, which this client reads back
    /// transparently.
    pub fn hello(&mut self, frames: FrameMode) -> Result<FrameMode, ClientError> {
        match self.roundtrip(&Request::Hello { frames, proto: 1 })? {
            Response::Hello { frames: acked, .. } => {
                self.mode = acked;
                Ok(acked)
            }
            _ => Err(ClientError::UnexpectedResponse("a HELLO ack")),
        }
    }

    /// Negotiates both the frame mode and protocol v2 pipelining. Returns
    /// `(acked frame mode, negotiated protocol level)` — the level is 1
    /// when the server predates v2, in which case [`Client::order_many`]
    /// refuses to pipeline.
    pub fn hello_v2(&mut self, frames: FrameMode) -> Result<(FrameMode, u32), ClientError> {
        match self.roundtrip(&Request::Hello {
            frames,
            proto: PROTO_VERSION,
        })? {
            Response::Hello {
                frames: acked,
                proto,
            } => {
                self.mode = acked;
                self.proto = proto;
                Ok((acked, proto))
            }
            _ => Err(ClientError::UnexpectedResponse("a HELLO ack")),
        }
    }

    /// The frame mode currently in effect.
    pub fn frame_mode(&self) -> FrameMode {
        self.mode
    }

    /// The protocol level negotiated by the last HELLO (1 until one ran).
    pub fn proto(&self) -> u32 {
        self.proto
    }

    /// Sends one request line and reads one complete response (the line
    /// plus, in binary mode, every frame its markers announce).
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        writeln!(self.writer, "{}", encode_request(req))?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let mut resp = decode_response(line.trim_end()).map_err(ClientError::Proto)?;
        self.read_frames(&mut resp)?;
        if let Response::Error(e) = resp {
            return Err(ClientError::Server(e));
        }
        Ok(resp)
    }

    /// Replaces every [`PermPayload::Framed`] marker with the permutation
    /// read from the stream, in marker order. A no-op for frameless
    /// responses, so it is also safe in NDJSON mode.
    fn read_frames(&mut self, resp: &mut Response) -> Result<(), ClientError> {
        let mut fill = |o: &mut OrderResponse| -> Result<(), ClientError> {
            if o.perm == Some(PermPayload::Framed) {
                o.perm = Some(PermPayload::Plain(read_perm_frame(&mut self.reader)?));
            }
            Ok(())
        };
        match resp {
            Response::Order(o) => fill(o)?,
            Response::Batch(items) => {
                for item in items.iter_mut().flatten() {
                    fill(item)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Orders one matrix.
    pub fn order(&mut self, req: OrderRequest) -> Result<OrderResponse, ClientError> {
        match self.roundtrip(&Request::Order(req))? {
            Response::Order(r) => Ok(r),
            _ => Err(ClientError::UnexpectedResponse("an ORDER response")),
        }
    }

    /// Orders a batch of matrices in one pipelined roundtrip. Each slot
    /// succeeds or fails independently.
    pub fn order_batch(
        &mut self,
        reqs: Vec<OrderRequest>,
    ) -> Result<Vec<Result<OrderResponse, ErrorResponse>>, ClientError> {
        match self.roundtrip(&Request::Batch(reqs))? {
            Response::Batch(rs) => Ok(rs),
            _ => Err(ClientError::UnexpectedResponse("a BATCH response")),
        }
    }

    /// Fetches the live metrics snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse("a STATS response")),
        }
    }

    /// Fetches the Prometheus-style metrics text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::UnexpectedResponse("a METRICS response")),
        }
    }

    /// Cancels the in-flight ORDER with client-assigned `id` (usually from
    /// a second connection while the first blocks on the ORDER). Returns
    /// whether the id was still pending.
    pub fn cancel(&mut self, id: u64) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Cancel { id })? {
            Response::CancelOk { pending } => Ok(pending),
            _ => Err(ClientError::UnexpectedResponse("a CANCEL ack")),
        }
    }

    /// Pushes one cache entry in the spill-file layout
    /// ([`crate::persist::encode_entry`]) to the server — the mesh
    /// replication / drain-handoff primitive. Returns whether the receiver
    /// stored it (`false` means it was dropped for exceeding the
    /// receiver's per-shard budget).
    pub fn replicate(&mut self, entry: &[u8]) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Replicate {
            entry: entry.to_vec(),
        })? {
            Response::ReplicateOk { stored } => Ok(stored),
            _ => Err(ClientError::UnexpectedResponse("a REPLICATE ack")),
        }
    }

    /// Heartbeats the server: sends a PING identifying this node as
    /// `from` and returns the responder's own mesh name from the ACK.
    pub fn ping(&mut self, from: &str) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Ping {
            from: from.to_string(),
        })? {
            Response::Pong { from } => Ok(from),
            _ => Err(ClientError::UnexpectedResponse("a PING ack")),
        }
    }

    /// Announces `from` as a (re)joining mesh member; the admitting
    /// server returns its current member list.
    pub fn join(&mut self, from: &str) -> Result<Vec<String>, ClientError> {
        match self.roundtrip(&Request::Join {
            from: from.to_string(),
        })? {
            Response::JoinOk { members } => Ok(members),
            _ => Err(ClientError::UnexpectedResponse("a JOIN ack")),
        }
    }

    /// Announces that `from` is leaving the mesh cleanly.
    pub fn leave(&mut self, from: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Leave {
            from: from.to_string(),
        })? {
            Response::LeaveOk => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("a LEAVE ack")),
        }
    }

    /// Anti-entropy digest exchange: sends `from`'s per-shard cache
    /// digests and returns the shard indices that diverged plus the keys
    /// the responder holds in those shards.
    pub fn sync(
        &mut self,
        from: &str,
        digests: &[u64],
    ) -> Result<(Vec<usize>, Vec<u64>), ClientError> {
        match self.roundtrip(&Request::Sync {
            from: from.to_string(),
            digests: digests.to_vec(),
        })? {
            Response::SyncOk { shards, keys } => Ok((shards, keys)),
            _ => Err(ClientError::UnexpectedResponse("a SYNC ack")),
        }
    }

    /// Warm-up pull for a joining member: the server bulk-returns the
    /// cached entries (spill-file byte layout) whose keys `from` now owns.
    pub fn warm(&mut self, from: &str) -> Result<Vec<Vec<u8>>, ClientError> {
        match self.roundtrip(&Request::Warm {
            from: from.to_string(),
        })? {
            Response::WarmOk { entries } => Ok(entries),
            _ => Err(ClientError::UnexpectedResponse("a WARM ack")),
        }
    }

    /// Asks the server to drain and exit; returns the drained-job count.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk { drained } => Ok(drained),
            _ => Err(ClientError::UnexpectedResponse("a SHUTDOWN ack")),
        }
    }

    /// Runs many ORDERs over this one connection, pipelined: up to
    /// `window` requests are on the wire at once, and responses are
    /// matched back by id as the server completes them — possibly out of
    /// request order. Results come back in request order regardless.
    ///
    /// Protocol v2 is negotiated automatically (keeping the current frame
    /// mode) if no [`Client::hello_v2`] ran yet; a v1-only server yields
    /// an error instead of silent head-of-line blocking. Requests keep a
    /// caller-assigned `id` (which must be unique within the call) and are
    /// numbered after the largest one otherwise. With `on_progress`
    /// installed, every request opts into `PROGRESS` frames and the
    /// callback sees each one as it interleaves.
    pub fn order_many(
        &mut self,
        reqs: Vec<OrderRequest>,
        window: usize,
        mut on_progress: Option<&mut dyn FnMut(&ProgressFrame)>,
    ) -> Result<Vec<Result<OrderResponse, ErrorResponse>>, ClientError> {
        if self.proto < 2 {
            self.hello_v2(self.mode)?;
        }
        if self.proto < 2 {
            return Err(ClientError::UnexpectedResponse("a protocol v2 HELLO ack"));
        }
        let n = reqs.len();
        let window = window.max(1);
        let mut next_id = reqs.iter().filter_map(|r| r.id).max().map_or(1, |m| m + 1);
        let mut slot_by_id: HashMap<u64, usize> = HashMap::with_capacity(n);
        let mut pending: Vec<Option<OrderRequest>> = Vec::with_capacity(n);
        for (slot, mut req) in reqs.into_iter().enumerate() {
            let id = req.id.unwrap_or_else(|| {
                let id = next_id;
                next_id += 1;
                id
            });
            req.id = Some(id);
            req.progress = on_progress.is_some();
            if slot_by_id.insert(id, slot).is_some() {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("duplicate request id {id}"),
                )));
            }
            pending.push(Some(req));
        }
        let mut results: Vec<Option<Result<OrderResponse, ErrorResponse>>> =
            (0..n).map(|_| None).collect();
        let mut sent = 0usize;
        let mut received = 0usize;
        let mut buf = String::new();
        while received < n {
            // Top up the in-flight window with one coalesced write.
            if sent < n && sent - received < window {
                buf.clear();
                while sent < n && sent - received < window {
                    let req = pending[sent].take().expect("request not yet sent");
                    buf.push_str(&encode_request(&Request::Order(req)));
                    buf.push('\n');
                    sent += 1;
                }
                self.writer.write_all(buf.as_bytes())?;
                self.writer.flush()?;
            }
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-pipeline",
                )));
            }
            let (id, mut resp) =
                decode_tagged_response(line.trim_end()).map_err(ClientError::Proto)?;
            if let Response::Progress(p) = &resp {
                if let Some(cb) = on_progress.as_deref_mut() {
                    cb(p);
                }
                continue;
            }
            self.read_frames(&mut resp)?;
            let Some(slot) = id.and_then(|id| slot_by_id.get(&id).copied()) else {
                return Err(ClientError::UnexpectedResponse(
                    "an id-tagged ORDER response",
                ));
            };
            let outcome = match resp {
                Response::Order(r) => Ok(r),
                Response::Error(e) => Err(e),
                _ => return Err(ClientError::UnexpectedResponse("an ORDER response")),
            };
            if results[slot].replace(outcome).is_some() {
                return Err(ClientError::UnexpectedResponse("a fresh response id"));
            }
            received += 1;
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect())
    }
}

/// The dial half of a [`ClientPool`]: address, frame mode, and timeouts,
/// detached from the idle list. `Copy`, so a caller serializing pool
/// access behind a lock can copy the dialer out and run the (slow) dial
/// and HELLO with no lock held at all.
#[derive(Debug, Clone, Copy)]
pub struct Dialer {
    addr: SocketAddr,
    frames: FrameMode,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

impl Dialer {
    /// Dials, applies the configured socket timeouts, and negotiates
    /// `frames` plus protocol v2.
    pub fn dial(&self) -> Result<Client, ClientError> {
        let mut client = match self.connect_timeout {
            Some(t) => Client::connect_with_timeout(&self.addr, t)?,
            None => Client::connect(self.addr)?,
        };
        client.set_io_timeout(self.io_timeout)?;
        client.hello_v2(self.frames)?;
        Ok(client)
    }

    /// The address this dialer connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A small pool of reusable daemon connections. [`ClientPool::get`] hands
/// out an idle connection (or dials and negotiates a fresh one), and
/// [`ClientPool::put`] returns it for reuse — callers skip the dial and
/// HELLO round trip on every burst after the first. Only return a
/// connection with no response in flight.
pub struct ClientPool {
    dialer: Dialer,
    idle: Vec<Client>,
    max_idle: usize,
}

impl ClientPool {
    /// A pool dialing `addr`, negotiating `frames` (and protocol v2) on
    /// every fresh connection, keeping at most `max_idle` parked ones.
    pub fn new(
        addr: impl ToSocketAddrs,
        frames: FrameMode,
        max_idle: usize,
    ) -> Result<ClientPool, ClientError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        Ok(ClientPool {
            dialer: Dialer {
                addr,
                frames,
                connect_timeout: None,
                io_timeout: None,
            },
            idle: Vec::new(),
            max_idle,
        })
    }

    /// Sets a dial deadline and socket read/write timeouts for every
    /// fresh connection this pool creates (existing idle connections are
    /// unaffected, but the pool starts empty). The mesh uses this so a
    /// blackholed or stalled peer costs a bounded window, never the OS
    /// TCP timeout or a hung thread.
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> ClientPool {
        self.dialer.connect_timeout = Some(connect);
        self.dialer.io_timeout = Some(io);
        self
    }

    /// A copy of the pool's dial configuration, for dialing without
    /// holding whatever lock guards the pool itself.
    pub fn dialer(&self) -> Dialer {
        self.dialer
    }

    /// An already-idle connection, if one is parked. Never dials.
    pub fn pop_idle(&mut self) -> Option<Client> {
        self.idle.pop()
    }

    /// An idle connection, or a freshly dialed and negotiated one.
    pub fn get(&mut self) -> Result<Client, ClientError> {
        match self.idle.pop() {
            Some(client) => Ok(client),
            None => self.dialer.dial(),
        }
    }

    /// Parks `client` for reuse (dropped when the pool is full).
    pub fn put(&mut self, client: Client) {
        if self.idle.len() < self.max_idle {
            self.idle.push(client);
        }
    }

    /// Connections currently parked.
    pub fn idle(&self) -> usize {
        self.idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_are_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 7,
        };
        let delays = policy.delays();
        assert_eq!(delays.len(), 7);
        assert_eq!(delays, policy.delays(), "same seed, same schedule");
        for d in &delays {
            assert!(
                *d >= policy.base && *d <= policy.cap,
                "out of bounds: {d:?}"
            );
        }
        // Decorrelated jitter must actually vary, and a different seed must
        // produce a different schedule.
        assert!(delays.windows(2).any(|w| w[0] != w[1]));
        let reseeded = RetryPolicy { seed: 8, ..policy };
        assert_ne!(delays, reseeded.delays());
    }

    #[test]
    fn single_attempt_policy_never_sleeps() {
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(policy.delays().is_empty());
    }

    #[test]
    fn retriability_classification() {
        use std::io::{Error, ErrorKind};
        assert!(ClientError::Server(ErrorResponse::retriable("busy")).is_retriable());
        assert!(!ClientError::Server(ErrorResponse::fatal("rate limited")).is_retriable());
        assert!(ClientError::Io(Error::from(ErrorKind::ConnectionRefused)).is_retriable());
        assert!(ClientError::Io(Error::from(ErrorKind::ConnectionReset)).is_retriable());
        // A busy rejection closes the socket; the race decides which of
        // these the client observes — both mean "dial again".
        assert!(ClientError::Io(Error::from(ErrorKind::BrokenPipe)).is_retriable());
        assert!(ClientError::Io(Error::from(ErrorKind::UnexpectedEof)).is_retriable());
        assert!(!ClientError::Io(Error::from(ErrorKind::PermissionDenied)).is_retriable());
        assert!(!ClientError::UnexpectedResponse("an ORDER response").is_retriable());
    }

    #[test]
    fn refused_connection_exhausts_attempts_quickly() {
        // Port 1 on loopback is almost certainly closed; the retry loop
        // must surface the refusal after its attempts, not hang.
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        let req = OrderRequest {
            alg: se_order::Algorithm::Rcm,
            source: crate::proto::MatrixSource::Path("/nonexistent.mtx".to_string()),
            timeout_ms: None,
            include_perm: false,
            threads: None,
            compressed: false,
            trace: false,
            id: None,
            progress: false,
            hop: false,
        };
        let err = order_with_retry("127.0.0.1:1", FrameMode::Ndjson, &req, &policy)
            .expect_err("no server is listening");
        assert!(matches!(err, ClientError::Io(_)));
    }
}
