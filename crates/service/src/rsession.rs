//! The reactor session layer: the pipelined, multiplexed protocol loop.
//!
//! One [`Session`] per connection, driven by `se-reactor` callbacks on the
//! owning event-loop thread — decode and dispatch happen on the reactor,
//! compute on the engine's worker pool, and completions come back through
//! [`se_reactor::Handle::post`] as [`SessionMsg`]s. Unlike the legacy
//! [`crate::session`] loop, reading never blocks on a running solve, so a
//! client may pipeline requests back-to-back on one connection.
//!
//! # Response ordering
//!
//! Protocol v1 promises responses *in request order*, so every response is
//! staged under its request sequence number and released strictly in
//! sequence — a pipelined v1 client observes exactly the bytes the
//! thread-per-connection loop would have produced. A `HELLO` negotiating
//! protocol v2 ends the ordered prefix: responses from the ack onward are
//! released the moment they are ready, tagged with the client-assigned
//! `"id"` when the request carried one, and unsolicited `PROGRESS` frames
//! may interleave between responses for orders that opted in. The
//! negotiated level never decreases on a connection.
//!
//! # Timeouts
//!
//! The engine no longer enforces wall-clock timeouts on this path (it
//! cannot block the loop); the session arms the connection's reactor
//! deadline with the nearest in-flight expiry, answers `request timed out`
//! itself, and drops the late completion when it eventually arrives.

use crate::engine::{Engine, OrderOutcome, ProgressSink, ProgressUpdate};
use crate::frame::FrameMode;
use crate::metrics::Metrics;
use crate::proto::{
    decode_request, encode_response_tagged, ErrorResponse, OrderRequest, ProgressFrame, Request,
    Response,
};
use crate::transport::RateLimiter;
use se_reactor::{ConnCtx, Handle, Handler, Token};
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Highest protocol level this session negotiates.
pub const PROTO_VERSION: u32 = 2;

/// Events posted to a session from outside its event loop: worker-pool
/// completions, progress updates, and the shutdown drain.
pub enum SessionMsg {
    /// An ORDER submitted under request sequence `seq` finished.
    Order {
        /// The request's sequence number on this connection.
        seq: u64,
        /// The order's result.
        outcome: OrderOutcome,
    },
    /// One member of the BATCH staged under `batch` finished.
    BatchMember {
        /// The BATCH request's sequence number.
        batch: u64,
        /// Index of the member within the batch.
        slot: usize,
        /// The member's result.
        outcome: OrderOutcome,
    },
    /// A progress update from the solve running for `seq`.
    Progress {
        /// The ORDER's sequence number.
        seq: u64,
        /// The update, as produced on the worker thread.
        update: ProgressUpdate,
    },
    /// The SHUTDOWN drain issued at `seq` finished; ack and stop.
    ShutdownReady {
        /// The SHUTDOWN request's sequence number.
        seq: u64,
        /// Jobs the pool completed over its lifetime.
        drained: u64,
    },
}

/// Per-in-flight-ORDER bookkeeping, keyed by request sequence.
struct Inflight {
    /// The id the response line is tagged with (v2 requests that carried
    /// one); `None` leaves the response untagged.
    wire_id: Option<u64>,
    /// Frame mode at submission time — a later HELLO must not re-encode an
    /// already-submitted response.
    mode: FrameMode,
    /// When the session answers `request timed out` on its own.
    deadline: Instant,
    /// Whether PROGRESS frames for this order go on the wire.
    progress: bool,
}

/// An in-flight BATCH: filled slot by slot as members complete.
struct BatchState {
    slots: Vec<Option<OrderOutcome>>,
    remaining: usize,
    mode: FrameMode,
    deadline: Instant,
}

/// One connection's protocol state, driven by the reactor.
pub struct Session {
    engine: Arc<Engine>,
    limiter: Option<Arc<RateLimiter>>,
    peer: Option<IpAddr>,
    token: Token,
    handle: Handle<SessionMsg>,
    /// Negotiated frame mode for responses encoded from now on.
    mode: FrameMode,
    /// Negotiated protocol level (starts at 1; never decreases).
    proto: u32,
    /// Sequence number assigned to the next request line.
    next_seq: u64,
    /// Next sequence the strict-order release gate is waiting for.
    release_next: u64,
    /// First sequence exempt from strict ordering (the v2 HELLO ack);
    /// `u64::MAX` while the connection is v1.
    strict_until: u64,
    /// Responses rendered but not yet released, by sequence.
    staged: BTreeMap<u64, Vec<u8>>,
    /// In-flight ORDERs by sequence.
    inflight: HashMap<u64, Inflight>,
    /// In-flight BATCHes by sequence.
    batches: HashMap<u64, BatchState>,
    /// A SHUTDOWN drain is running; if the connection dies before the ack,
    /// `on_close` still stops the reactor.
    shutdown_pending: bool,
}

impl Session {
    /// Builds the session for one accepted connection (the reactor
    /// factory).
    pub fn new(
        engine: Arc<Engine>,
        limiter: Option<Arc<RateLimiter>>,
        token: Token,
        peer: Option<IpAddr>,
        handle: Handle<SessionMsg>,
    ) -> Session {
        let m = engine.metrics();
        m.inc(&m.connections);
        m.inc(&m.open_connections);
        Session {
            engine,
            limiter,
            peer,
            token,
            handle,
            mode: FrameMode::default(),
            proto: 1,
            next_seq: 0,
            release_next: 0,
            strict_until: u64::MAX,
            staged: BTreeMap::new(),
            inflight: HashMap::new(),
            batches: HashMap::new(),
            shutdown_pending: false,
        }
    }

    fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// Charges `cost` tokens for this connection's peer; no limiter (or no
    /// peer address) always allows.
    fn allow(&self, cost: u64) -> bool {
        match (&self.limiter, self.peer) {
            (Some(limiter), Some(peer)) => limiter.allow(peer, cost),
            _ => true,
        }
    }

    /// Stages the rendered response for `seq` and releases everything the
    /// ordering rules permit: strictly in sequence up to `strict_until`,
    /// immediately afterwards.
    fn ready(&mut self, ctx: &mut ConnCtx<'_>, seq: u64, bytes: Vec<u8>) {
        self.staged.insert(seq, bytes);
        while self.release_next < self.strict_until {
            match self.staged.remove(&self.release_next) {
                Some(b) => {
                    ctx.send(b);
                    self.release_next += 1;
                }
                // The gate sequence is still computing; everything stays
                // staged so a v1 client sees responses in request order.
                None => return,
            }
        }
        // Past the ordered prefix (v2): ship everything ready, tagged.
        for (_seq, b) in std::mem::take(&mut self.staged) {
            ctx.send(b);
        }
    }

    /// Re-arms the connection's reactor deadline to the nearest in-flight
    /// expiry (or clears it).
    fn arm_deadline(&self, ctx: &mut ConnCtx<'_>) {
        let next = self
            .inflight
            .values()
            .map(|i| i.deadline)
            .chain(self.batches.values().map(|b| b.deadline))
            .min();
        ctx.set_deadline(next);
    }

    /// Submits one ORDER to the pool; errors are answered inline.
    fn submit(&mut self, ctx: &mut ConnCtx<'_>, seq: u64, req: OrderRequest) {
        if !self.allow(1) {
            self.metrics().inc(&self.metrics().rate_limited);
            let resp = Response::Error(ErrorResponse::fatal("rate limited"));
            let bytes = render(&resp, self.mode, None);
            return self.ready(ctx, seq, bytes);
        }
        let wire_id = if self.proto >= 2 { req.id } else { None };
        let wants_progress = self.proto >= 2 && req.progress && req.id.is_some();
        let progress: Option<ProgressSink> = wants_progress.then(|| {
            let handle = self.handle.clone();
            let token = self.token;
            Arc::new(move |update: ProgressUpdate| {
                handle.post(token, SessionMsg::Progress { seq, update });
            }) as ProgressSink
        });
        let done = {
            let handle = self.handle.clone();
            let token = self.token;
            Box::new(move |outcome: OrderOutcome| {
                handle.post(token, SessionMsg::Order { seq, outcome });
            })
        };
        match self.engine.submit_order_async(req, progress, done) {
            Ok(timeout) => {
                self.metrics().inc(&self.metrics().inflight_requests);
                self.inflight.insert(
                    seq,
                    Inflight {
                        wire_id,
                        mode: self.mode,
                        deadline: Instant::now() + timeout,
                        progress: wants_progress,
                    },
                );
                self.arm_deadline(ctx);
            }
            Err(e) => {
                let bytes = render(&Response::Error(e), self.mode, wire_id);
                self.ready(ctx, seq, bytes);
            }
        }
    }

    /// Submits every BATCH member to the pool at once; the aggregate
    /// response goes out when the last slot fills (or the deadline fires).
    fn submit_batch(&mut self, ctx: &mut ConnCtx<'_>, seq: u64, reqs: Vec<OrderRequest>) {
        if !self.allow(reqs.len() as u64) {
            self.metrics().inc(&self.metrics().rate_limited);
            let resp = Response::Error(ErrorResponse::fatal("rate limited"));
            let bytes = render(&resp, self.mode, None);
            return self.ready(ctx, seq, bytes);
        }
        self.metrics().inc(&self.metrics().batches);
        let n = reqs.len();
        let mut slots: Vec<Option<OrderOutcome>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        let mut max_timeout = Duration::ZERO;
        for (slot, req) in reqs.into_iter().enumerate() {
            let handle = self.handle.clone();
            let token = self.token;
            let done = Box::new(move |outcome: OrderOutcome| {
                handle.post(
                    token,
                    SessionMsg::BatchMember {
                        batch: seq,
                        slot,
                        outcome,
                    },
                );
            });
            match self.engine.submit_order_async(req, None, done) {
                Ok(timeout) => {
                    self.metrics().inc(&self.metrics().inflight_requests);
                    max_timeout = max_timeout.max(timeout);
                }
                Err(e) => {
                    slots[slot] = Some(Err(e));
                    remaining -= 1;
                }
            }
        }
        if remaining == 0 {
            let outcomes = slots.into_iter().map(|s| s.expect("slot filled")).collect();
            let bytes = render(&Response::Batch(outcomes), self.mode, None);
            return self.ready(ctx, seq, bytes);
        }
        self.batches.insert(
            seq,
            BatchState {
                slots,
                remaining,
                mode: self.mode,
                deadline: Instant::now() + max_timeout,
            },
        );
        self.arm_deadline(ctx);
    }
}

impl Handler<SessionMsg> for Session {
    fn on_line(&mut self, ctx: &mut ConnCtx<'_>, line: String) {
        if line.trim().is_empty() {
            return;
        }
        self.metrics().inc(&self.metrics().requests);
        let seq = self.next_seq;
        self.next_seq += 1;
        match decode_request(&line) {
            Err(e) => {
                self.metrics().inc(&self.metrics().errors);
                let resp = Response::Error(ErrorResponse::fatal(e.to_string()));
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Hello { frames, proto }) => {
                self.mode = frames;
                // The level never decreases: a later HELLO asking for less
                // re-acks what was already negotiated.
                let negotiated = proto.min(PROTO_VERSION).max(self.proto);
                if self.proto < 2 && negotiated >= 2 {
                    // The ordered prefix ends here: this ack and everything
                    // after it release as soon as they are ready.
                    self.strict_until = seq;
                }
                self.proto = negotiated;
                let resp = Response::Hello {
                    frames,
                    proto: negotiated,
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Order(req)) => self.submit(ctx, seq, req),
            Ok(Request::Batch(reqs)) => self.submit_batch(ctx, seq, reqs),
            Ok(Request::Stats) => {
                let resp = Response::Stats(self.engine.stats_snapshot());
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Cancel { id }) => {
                let resp = Response::CancelOk {
                    pending: self.engine.cancel(id),
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Metrics) => {
                let resp = Response::Metrics(self.engine.metrics_text());
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Replicate { entry }) => {
                // A peer pushing a cache entry (mesh replication or drain
                // handoff). Accepted only from configured mesh peers —
                // entries are served as authoritative answers, so an open
                // REPLICATE would be a silent cache-poisoning vector.
                // Validation + insert are a cheap in-memory operation plus
                // at most one spill write, so it answers inline like STATS
                // rather than on the worker pool.
                let resp = if !self.engine.replicate_allowed(self.peer) {
                    self.metrics().inc(&self.metrics().errors);
                    Response::Error(ErrorResponse::fatal(
                        "REPLICATE refused: sender is not a configured mesh peer",
                    ))
                } else {
                    match self.engine.apply_replicate(&entry) {
                        Ok(stored) => Response::ReplicateOk { stored },
                        Err(e) => {
                            self.metrics().inc(&self.metrics().errors);
                            Response::Error(e)
                        }
                    }
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            // Membership traffic answers inline like STATS: every handler
            // is a cheap in-memory operation (WARM reads the cache but
            // never computes). PING and JOIN are open; LEAVE / SYNC /
            // WARM are member-gated inside the engine handlers.
            Ok(Request::Ping { from }) => {
                let resp = self.engine.handle_ping(&from);
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Join { from }) => {
                let resp = match self.engine.handle_join(&from, self.peer) {
                    Ok(r) => r,
                    Err(e) => {
                        self.metrics().inc(&self.metrics().errors);
                        Response::Error(e)
                    }
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Leave { from }) => {
                let resp = match self.engine.handle_leave(&from, self.peer) {
                    Ok(r) => r,
                    Err(e) => {
                        self.metrics().inc(&self.metrics().errors);
                        Response::Error(e)
                    }
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Sync { from, digests }) => {
                let resp = match self.engine.handle_sync(&from, &digests, self.peer) {
                    Ok(r) => r,
                    Err(e) => {
                        self.metrics().inc(&self.metrics().errors);
                        Response::Error(e)
                    }
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Warm { from }) => {
                let resp = match self.engine.handle_warm(&from, self.peer) {
                    Ok(r) => r,
                    Err(e) => {
                        self.metrics().inc(&self.metrics().errors);
                        Response::Error(e)
                    }
                };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
            }
            Ok(Request::Shutdown) => {
                // Draining the pool blocks, so it runs on its own thread;
                // the ack comes back as a ShutdownReady message. Completions
                // of this connection's own in-flight orders post before the
                // drain finishes, so their responses precede the ack.
                self.shutdown_pending = true;
                let engine = Arc::clone(&self.engine);
                let handle = self.handle.clone();
                let token = self.token;
                let spawned = std::thread::Builder::new()
                    .name("orderd-drain".to_string())
                    .spawn(move || {
                        let drained = engine.begin_shutdown();
                        engine.mark_shutdown_complete();
                        handle.post(token, SessionMsg::ShutdownReady { seq, drained });
                    });
                if spawned.is_err() {
                    // No thread to drain on; answer and stop directly.
                    let drained = self.engine.begin_shutdown();
                    self.engine.mark_shutdown_complete();
                    let resp = Response::ShutdownOk { drained };
                    let bytes = render(&resp, self.mode, None);
                    self.ready(ctx, seq, bytes);
                    ctx.close_after_flush();
                    self.handle.stop();
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut ConnCtx<'_>, msg: SessionMsg) {
        match msg {
            SessionMsg::Order { seq, outcome } => {
                // A sequence no longer in flight already got its timeout
                // error; the late completion is dropped.
                let Some(info) = self.inflight.remove(&seq) else {
                    return;
                };
                self.metrics().dec(&self.metrics().inflight_requests);
                let resp = match outcome {
                    Ok(r) => Response::Order(r),
                    Err(e) => Response::Error(e),
                };
                let bytes = render(&resp, info.mode, info.wire_id);
                self.arm_deadline(ctx);
                self.ready(ctx, seq, bytes);
            }
            SessionMsg::BatchMember {
                batch,
                slot,
                outcome,
            } => {
                let Some(st) = self.batches.get_mut(&batch) else {
                    return;
                };
                if st.slots.get(slot).is_none_or(|s| s.is_some()) {
                    return;
                }
                st.slots[slot] = Some(outcome);
                st.remaining -= 1;
                self.metrics().dec(&self.metrics().inflight_requests);
                if self.batches.get(&batch).is_some_and(|b| b.remaining == 0) {
                    let st = self.batches.remove(&batch).expect("batch present");
                    let outcomes = st
                        .slots
                        .into_iter()
                        .map(|s| s.expect("slot filled"))
                        .collect();
                    let bytes = render(&Response::Batch(outcomes), st.mode, None);
                    self.arm_deadline(ctx);
                    self.ready(ctx, batch, bytes);
                }
            }
            SessionMsg::Progress { seq, update } => {
                let Some(info) = self.inflight.get(&seq) else {
                    return;
                };
                let (true, Some(id)) = (info.progress, info.wire_id) else {
                    return;
                };
                let frame = ProgressFrame {
                    id,
                    stage: update.stage,
                    percent: update.percent,
                    micros: update.micros,
                    matvecs: update.matvecs,
                };
                let bytes = render(&Response::Progress(frame), self.mode, None);
                self.metrics().inc(&self.metrics().progress_frames);
                // Progress frames only exist on v2 and interleave freely:
                // straight to the write queue, never staged.
                ctx.send(bytes);
            }
            SessionMsg::ShutdownReady { seq, drained } => {
                self.shutdown_pending = false;
                let resp = Response::ShutdownOk { drained };
                let bytes = render(&resp, self.mode, None);
                self.ready(ctx, seq, bytes);
                ctx.close_after_flush();
                self.handle.stop();
            }
        }
    }

    fn on_deadline(&mut self, ctx: &mut ConnCtx<'_>, now: Instant) {
        let expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, i)| i.deadline <= now)
            .map(|(s, _)| *s)
            .collect();
        for seq in expired {
            let info = self.inflight.remove(&seq).expect("expired order present");
            self.metrics().inc(&self.metrics().timeouts);
            self.metrics().dec(&self.metrics().inflight_requests);
            let resp = Response::Error(ErrorResponse::retriable("request timed out"));
            let bytes = render(&resp, info.mode, info.wire_id);
            self.ready(ctx, seq, bytes);
        }
        let expired: Vec<u64> = self
            .batches
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(s, _)| *s)
            .collect();
        for seq in expired {
            let mut st = self.batches.remove(&seq).expect("expired batch present");
            for slot in st.slots.iter_mut() {
                if slot.is_none() {
                    self.metrics().inc(&self.metrics().timeouts);
                    self.metrics().dec(&self.metrics().inflight_requests);
                    *slot = Some(Err(ErrorResponse::retriable("request timed out")));
                }
            }
            let outcomes = st
                .slots
                .into_iter()
                .map(|s| s.expect("slot filled"))
                .collect();
            let bytes = render(&Response::Batch(outcomes), st.mode, None);
            self.ready(ctx, seq, bytes);
        }
        self.arm_deadline(ctx);
    }

    fn on_close(&mut self) {
        let m = self.metrics();
        m.dec(&m.open_connections);
        for _ in 0..self.inflight.len() {
            m.dec(&m.inflight_requests);
        }
        for b in self.batches.values() {
            for _ in 0..b.remaining {
                m.dec(&m.inflight_requests);
            }
        }
        // The shutdown initiator died before its ack: the drain still runs
        // to completion, but the reactor must stop regardless.
        if self.shutdown_pending {
            self.handle.stop();
        }
    }
}

/// Renders one response as the exact wire bytes — the JSON line, its
/// newline, and any binary frames — so the reactor writes it with a single
/// syscall when the socket allows.
fn render(resp: &Response, mode: FrameMode, id: Option<u64>) -> Vec<u8> {
    let (line, frames) = encode_response_tagged(resp, mode, id);
    let frame_bytes: usize = frames.iter().map(|f| f.bytes().len()).sum();
    let mut out = Vec::with_capacity(line.len() + 1 + frame_bytes);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    for f in &frames {
        out.extend_from_slice(f.bytes());
    }
    out
}
