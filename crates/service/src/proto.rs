//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request line. Commands:
//!
//! * `HELLO` — negotiate the connection's frame mode (NDJSON or binary),
//! * `ORDER` — order one matrix (inline payload or server-side path),
//! * `BATCH` — a pipelined vector of ORDER requests answered in one line,
//! * `STATS` — live metrics snapshot,
//! * `CANCEL` — cancel a queued/running ORDER by its client-assigned id,
//! * `METRICS` — Prometheus-style text exposition of the server's metrics,
//! * `SHUTDOWN` — graceful drain; the server finishes queued work first.
//!
//! ```text
//! → {"cmd":"ORDER","alg":"spectral","format":"mtx","payload":"%%MatrixMarket..."}
//! ← {"ok":true,"alg":"SPECTRAL","n":24,"nnz":80,"stats":{...},"perm":[...],"cache_hit":false,"micros":412}
//! ```
//!
//! The `stats` object serializes [`sparsemat::envelope::EnvelopeStats`] —
//! the same record the `spectral-order` CLI prints with `--json`, so the
//! service and the CLI emit identical stat records.
//!
//! After a `HELLO` negotiating `"frames":"binary"`, responses carrying a
//! permutation replace `"perm":[…]` with `"perm_frame":true` and append one
//! binary frame per marker after the line (see [`crate::frame`]). Every
//! response is bit-identical in content across both modes.

use crate::frame::{encode_perm_frame, encode_perm_json, FrameMode};
use crate::json::{parse, Json, JsonError};
use se_order::Algorithm;
use sparsemat::envelope::EnvelopeStats;
use std::sync::Arc;

/// Where the matrix of an ORDER request comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// The file content travels inline in the request.
    Inline {
        /// Payload format.
        format: MatrixFormat,
        /// The complete file text.
        payload: String,
    },
    /// A path readable by the *server* process.
    Path(String),
}

/// Supported matrix file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixFormat {
    /// MatrixMarket coordinate format (`.mtx`).
    MatrixMarket,
    /// Chaco/METIS graph format (`.graph`; pattern only).
    Chaco,
    /// Harwell–Boeing (`.rsa`/`.rua`).
    HarwellBoeing,
}

impl MatrixFormat {
    /// The wire name (`"mtx"`, `"graph"`, `"hb"`).
    pub fn wire_name(self) -> &'static str {
        match self {
            MatrixFormat::MatrixMarket => "mtx",
            MatrixFormat::Chaco => "graph",
            MatrixFormat::HarwellBoeing => "hb",
        }
    }

    /// Parses a wire name.
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "mtx" | "matrixmarket" => MatrixFormat::MatrixMarket,
            "graph" | "chaco" => MatrixFormat::Chaco,
            "hb" | "rsa" | "rua" => MatrixFormat::HarwellBoeing,
            _ => return None,
        })
    }

    /// Guesses the format from a file path, the CLI's extension convention.
    pub fn from_path(path: &str) -> Self {
        if path.ends_with(".mtx") {
            MatrixFormat::MatrixMarket
        } else if path.ends_with(".graph") {
            MatrixFormat::Chaco
        } else {
            MatrixFormat::HarwellBoeing
        }
    }
}

/// The one algorithm vocabulary: `(wire/CLI name, algorithm)` pairs, in the
/// order error messages and usage strings enumerate them. Everything that
/// names an algorithm — wire decode ([`parse_algorithm`]), wire encode
/// ([`algorithm_wire_name`]), the CLI's `--alg` parser and its usage text,
/// and the "unknown algorithm" error — derives from this table, so a new
/// algorithm added here is automatically accepted and advertised everywhere.
pub const ALGORITHMS: &[(&str, Algorithm)] = &[
    ("spectral", Algorithm::Spectral),
    ("tracemin", Algorithm::TraceMin),
    ("rcm", Algorithm::Rcm),
    ("cm", Algorithm::CuthillMckee),
    ("gps", Algorithm::Gps),
    ("gk", Algorithm::Gk),
    ("sloan", Algorithm::Sloan),
    ("hybrid", Algorithm::HybridSloanSpectral),
    ("refined", Algorithm::SpectralRefined),
    ("mindeg", Algorithm::MinDegree),
    ("nd", Algorithm::SpectralNd),
    ("identity", Algorithm::Identity),
];

/// Parses the CLI/wire algorithm name (shared by `spectral-order` and the
/// service so both accept the same vocabulary — see [`ALGORITHMS`]).
pub fn parse_algorithm(s: &str) -> Option<Algorithm> {
    let lower = s.to_ascii_lowercase();
    ALGORITHMS
        .iter()
        .find(|(name, _)| *name == lower)
        .map(|&(_, alg)| alg)
}

/// The wire/CLI name of `alg` — the reverse of [`parse_algorithm`]. Distinct
/// from [`Algorithm::name`] (the paper's uppercase table labels, which are
/// not all parseable wire names, e.g. `SPECTRAL+X`).
pub fn algorithm_wire_name(alg: Algorithm) -> &'static str {
    ALGORITHMS
        .iter()
        .find(|&&(_, a)| a == alg)
        .map(|&(name, _)| name)
        .expect("every Algorithm variant has a row in ALGORITHMS")
}

/// The accepted algorithm names, comma-joined — for usage strings and the
/// "unknown algorithm" error.
pub fn algorithm_names() -> String {
    ALGORITHMS
        .iter()
        .map(|&(name, _)| name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// One ordering request.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderRequest {
    /// Ordering algorithm.
    pub alg: Algorithm,
    /// Matrix source.
    pub source: MatrixSource,
    /// Per-request wall-clock timeout override (ms).
    pub timeout_ms: Option<u64>,
    /// Include the permutation vector in the response (default true).
    pub include_perm: bool,
    /// Solver threads for the eigensolver-backed algorithms (`0` = all
    /// cores); `None` uses the server's configured default. Orderings are
    /// bit-identical for every value, so this never affects results — or
    /// cache keys — only wall-clock time. Decoding rejects values above
    /// [`MAX_REQUEST_THREADS`], and the server additionally clamps to the
    /// machine's core count before spawning anything.
    pub threads: Option<usize>,
    /// Order through supervariable compression: indistinguishable vertices
    /// are merged, the quotient graph is ordered, and the result expanded
    /// (see `se_order::order_compressed_with`). Changes the resulting
    /// permutation, so — unlike `threads` — it **is** part of the cache key.
    pub compressed: bool,
    /// Record a hierarchical span trace of the pipeline and return it as a
    /// `trace` subtree in the response. Traced requests always recompute
    /// (the cache is bypassed on lookup, though the resulting ordering is
    /// still inserted) and the trace itself is never cached.
    pub trace: bool,
    /// Optional client-assigned request id. On protocol v1 connections it
    /// is echoed nowhere but usable as the target of a later `CANCEL`
    /// command (typically from a second connection); on v2 connections it
    /// additionally tags the response line (`"id":N`) so pipelined
    /// requests may complete out of order. Ids are only tracked for CANCEL
    /// while the request is queued or running; reusing an id after
    /// completion is harmless.
    pub id: Option<u64>,
    /// Stream unsolicited `PROGRESS` lines for this request while it runs.
    /// Honoured only on protocol v2 connections with an `id` set —
    /// interleaving would corrupt v1's strict request→response sequencing,
    /// so v1 sessions ignore the flag.
    pub progress: bool,
    /// This request was forwarded by a mesh peer (one hop). A hopped
    /// request is answered entirely locally — it is never forwarded
    /// again, so two nodes with momentarily disagreeing ring views cannot
    /// bounce a request between each other. Replication is orthogonal and
    /// gated on *ownership*: an owner that computes a hopped request
    /// still pushes the entry to its successors (that is the main
    /// replication path), while a non-owner never replicates. Encoded on
    /// the wire only when set, so non-mesh request bytes are unchanged.
    pub hop: bool,
}

/// Upper bound accepted for the wire `threads` field.
///
/// The executing server clamps the value to its own core count anyway; this
/// decode-time cap exists so an absurd request (`"threads": 1000000`) is
/// reported as malformed instead of being treated as a scheduling hint.
pub const MAX_REQUEST_THREADS: usize = 512;

impl OrderRequest {
    /// A request ordering an inline MatrixMarket payload.
    pub fn inline_mtx(alg: Algorithm, payload: impl Into<String>) -> Self {
        OrderRequest {
            alg,
            source: MatrixSource::Inline {
                format: MatrixFormat::MatrixMarket,
                payload: payload.into(),
            },
            timeout_ms: None,
            include_perm: true,
            threads: None,
            compressed: false,
            trace: false,
            id: None,
            progress: false,
            hop: false,
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the connection's frame mode and protocol level.
    Hello {
        /// Requested framing for subsequent responses.
        frames: FrameMode,
        /// Requested protocol level: `1` (strict request→response) or `2`
        /// (pipelined, id-tagged responses, PROGRESS frames). Encoded on
        /// the wire only when ≥ 2, so v1 request bytes are unchanged.
        proto: u32,
    },
    /// Order one matrix.
    Order(OrderRequest),
    /// Order several matrices, pipelined through the worker pool.
    Batch(Vec<OrderRequest>),
    /// Metrics snapshot.
    Stats,
    /// Cancel a previously submitted ORDER by its client-assigned `id`.
    /// Queued requests are dropped; running ones finish but their response
    /// is suppressed (the submitter gets an error line instead).
    Cancel {
        /// The `id` of the ORDER request to cancel.
        id: u64,
    },
    /// Prometheus-style text exposition of the server's metrics.
    Metrics,
    /// Mesh replication push: one cache entry in the spill-file layout
    /// ([`crate::persist`]), shipped by the key's owner to a successor (or
    /// by a draining node to the new owner). The receiver validates the
    /// bytes exactly like a spill file read from disk and answers
    /// [`Response::ReplicateOk`]. Never sent by ordinary clients.
    Replicate {
        /// The entry, encoded by [`crate::persist::encode_entry`].
        entry: Vec<u8>,
    },
    /// Failure-detector heartbeat between mesh members: the sender names
    /// itself so the receiver can record a passive liveness proof, and the
    /// [`Response::Pong`] ack is the sender's own evidence. Multiplexed
    /// over the ordinary peer connections — no separate heartbeat port.
    Ping {
        /// The sender's ring name (its bound address).
        from: String,
    },
    /// Membership announcement: a (re)starting member asks to be admitted
    /// to the ring. Any live member may admit it; the ack returns the
    /// admitter's member list so the joiner learns names it was not
    /// configured with. Never sent by ordinary clients.
    Join {
        /// The joiner's ring name (its bound address).
        from: String,
    },
    /// Membership departure: a draining member announces it is leaving, so
    /// peers mark it dead immediately instead of waiting out the suspicion
    /// window. Accepted only from mesh member addresses.
    Leave {
        /// The leaver's ring name.
        from: String,
    },
    /// Anti-entropy digest exchange: the sender's per-cache-shard FNV
    /// summaries of the keys both it and the receiver replicate. The
    /// receiver answers with the shards whose digests disagree plus its
    /// own keys there ([`Response::SyncOk`]); the sender then repairs the
    /// difference with ordinary `REPLICATE` pushes. Accepted only from
    /// mesh member addresses.
    Sync {
        /// The sender's ring name.
        from: String,
        /// One FNV-1a digest per cache shard, over the sorted keys of the
        /// shared replica range (see `OPERATIONS.md`).
        digests: Vec<u64>,
    },
    /// Warm-up request from a joining member: the receiver bulk-returns
    /// the cache entries (spill-file layout) whose keys the joiner now
    /// owns, so the joiner serves hits before its first client asks.
    /// Accepted only from mesh member addresses.
    Warm {
        /// The joiner's ring name.
        from: String,
    },
    /// Graceful drain and exit.
    Shutdown,
}

/// A permutation rendered once in every wire encoding, shared by the cache
/// and response paths via `Arc` — cache hits reuse these bytes instead of
/// re-encoding the permutation per response.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPerm {
    perm: Vec<usize>,
    json: Arc<str>,
    frame: Vec<u8>,
}

impl EncodedPerm {
    /// Renders both encodings of `perm` (NDJSON array text + binary frame).
    pub fn new(perm: Vec<usize>) -> Self {
        let json: Arc<str> = encode_perm_json(&perm).into();
        let frame = encode_perm_frame(&perm);
        EncodedPerm { perm, json, frame }
    }

    /// The permutation itself (new position → old index).
    pub fn order(&self) -> &[usize] {
        &self.perm
    }

    /// The pre-rendered NDJSON array text `[p0,p1,…]`.
    pub fn json(&self) -> &Arc<str> {
        &self.json
    }

    /// The pre-rendered binary frame (header + payload).
    pub fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// Total heap bytes this record holds (permutation + both encodings) —
    /// what the cache charges against its byte budget.
    pub fn heap_bytes(&self) -> usize {
        self.perm.len() * std::mem::size_of::<usize>() + self.json.len() + self.frame.len()
    }
}

/// The permutation payload of an ORDER response.
///
/// Equality compares the permutation *content*, so a served-from-cache
/// response equals a freshly computed one.
#[derive(Debug, Clone)]
pub enum PermPayload {
    /// An explicit vector — what client-side decoding always produces.
    Plain(Vec<usize>),
    /// A cache-resident pre-encoded permutation (server fast path).
    Cached(Arc<EncodedPerm>),
    /// Decode-side marker: the line said `"perm_frame":true` and the
    /// permutation follows as a binary frame ([`crate::Client`] replaces
    /// this with [`PermPayload::Plain`] after reading the frame). Carries no
    /// data; [`PermPayload::order`] returns an empty slice.
    Framed,
}

impl PermPayload {
    /// The permutation, new position → old index (empty for
    /// [`PermPayload::Framed`]).
    pub fn order(&self) -> &[usize] {
        match self {
            PermPayload::Plain(p) => p,
            PermPayload::Cached(e) => e.order(),
            PermPayload::Framed => &[],
        }
    }
}

impl PartialEq for PermPayload {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PermPayload::Framed, PermPayload::Framed) => true,
            (PermPayload::Framed, _) | (_, PermPayload::Framed) => false,
            _ => self.order() == other.order(),
        }
    }
}

impl From<Vec<usize>> for PermPayload {
    fn from(v: Vec<usize>) -> Self {
        PermPayload::Plain(v)
    }
}

/// A successful ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderResponse {
    /// Algorithm name (`Algorithm::name()` form, e.g. `"SPECTRAL"`).
    pub alg: String,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the paper's convention (lower triangle + diagonal).
    pub nnz: usize,
    /// Envelope statistics of the ordering.
    pub stats: EnvelopeStats,
    /// The permutation, new position → old index (0-based); omitted when
    /// the request set `include_perm: false`.
    pub perm: Option<PermPayload>,
    /// Whether the ordering came from the content-addressed cache.
    pub cache_hit: bool,
    /// Server-side wall-clock time for this request (µs).
    pub micros: u64,
    /// Supervariable compression ratio (`n / n_supervariables`); present
    /// only when the request set `compressed: true`.
    pub compression_ratio: Option<f64>,
    /// `Some(reason)` when the degradation ladder produced the result with
    /// a fallback rung instead of the requested algorithm. The reason is
    /// machine-readable (`"not_converged"`, `"deadline"`, `"cancelled"`,
    /// `"matvec_cap"`, `"numerical"` or `"fault:<site>"`); on the wire it
    /// appears as `"degraded":true,"degraded_reason":"…"` and both keys are
    /// omitted entirely on the (common) non-degraded path, keeping those
    /// response bytes unchanged.
    pub degraded: Option<String>,
    /// Pre-rendered compact JSON of the span tree (`se_trace::SpanNode`
    /// rendered with `render_json`); present only when the request set
    /// `trace: true`. Spliced verbatim into the response line and never
    /// cached. Decoding re-renders the subtree, so the text may differ in
    /// float formatting while describing the identical tree.
    pub trace: Option<Arc<str>>,
}

/// An error outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorResponse {
    /// Human-readable description.
    pub error: String,
    /// Whether retrying later can succeed (queue-full / timeout).
    pub retriable: bool,
}

impl ErrorResponse {
    /// A non-retriable error.
    pub fn fatal(msg: impl Into<String>) -> Self {
        ErrorResponse {
            error: msg.into(),
            retriable: false,
        }
    }

    /// A retriable error (backpressure, timeout).
    pub fn retriable(msg: impl Into<String>) -> Self {
        ErrorResponse {
            error: msg.into(),
            retriable: true,
        }
    }
}

/// An unsolicited server→client progress notification (protocol v2 only):
/// the ORDER identified by `id` is still running and has just passed
/// `stage`. Interleaved between response lines; never sent on v1
/// connections and never counted as a response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressFrame {
    /// The client-assigned id of the running ORDER.
    pub id: u64,
    /// Pipeline stage that just completed (se-trace span vocabulary:
    /// `"lanczos"`, `"coarsest_solve"`, `"level[k]"`, `"rqi"`, …).
    pub stage: String,
    /// Monotone best-effort completion estimate in `[0, 100]`.
    pub percent: f64,
    /// Wall-clock µs spent on the request so far.
    pub micros: u64,
    /// Cumulative matrix–vector products, when the stage reports them.
    pub matvecs: Option<u64>,
}

/// Any response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// HELLO acknowledged; `frames` is the mode now in effect.
    Hello {
        /// The negotiated frame mode (echoes the accepted request).
        frames: FrameMode,
        /// The negotiated protocol level (the server answers with
        /// `min(requested, supported)`, never more than it was asked for).
        proto: u32,
    },
    /// ORDER result.
    Order(OrderResponse),
    /// BATCH result, one slot per sub-request, order preserved.
    Batch(Vec<Result<OrderResponse, ErrorResponse>>),
    /// STATS snapshot (opaque JSON, schema documented in `metrics`).
    Stats(Json),
    /// METRICS result: Prometheus-style text exposition.
    Metrics(String),
    /// CANCEL acknowledged.
    CancelOk {
        /// Whether the id was still pending (queued or running) when the
        /// cancel landed; `false` means there was nothing to cancel.
        pending: bool,
    },
    /// SHUTDOWN acknowledged; `drained` jobs finished before the ack.
    ShutdownOk {
        /// Jobs completed during the drain.
        drained: u64,
    },
    /// Unsolicited progress for a running ORDER (protocol v2).
    Progress(ProgressFrame),
    /// REPLICATE acknowledged.
    ReplicateOk {
        /// Whether the entry was stored (`false` when it exceeds the
        /// receiver's per-shard budget and was dropped — harmless, the
        /// owner still has it).
        stored: bool,
    },
    /// PING acknowledged — the liveness proof the failure detector feeds
    /// on.
    Pong {
        /// The responder's ring name (empty outside a mesh).
        from: String,
    },
    /// JOIN acknowledged: the joiner is admitted.
    JoinOk {
        /// The admitter's current member list (including itself), so the
        /// joiner learns members it was not configured with.
        members: Vec<String>,
    },
    /// LEAVE acknowledged.
    LeaveOk,
    /// SYNC answer: where the replicas diverge.
    SyncOk {
        /// Cache shards whose digest disagreed with the sender's.
        shards: Vec<usize>,
        /// The responder's keys in those shards (within the shared
        /// replica range) — the sender pushes whatever it holds that is
        /// missing here.
        keys: Vec<u64>,
    },
    /// WARM answer: bulk entry transfer for a joiner's warm-up.
    WarmOk {
        /// Cache entries in the spill-file layout
        /// ([`crate::persist::encode_entry`]), bounded by the responder.
        entries: Vec<Vec<u8>>,
    },
    /// Request failed.
    Error(ErrorResponse),
}

/// Errors turning a line into a [`Request`]/[`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Not valid JSON.
    Json(JsonError),
    /// Valid JSON, invalid protocol shape.
    Shape(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "{e}"),
            ProtoError::Shape(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn shape(msg: impl Into<String>) -> ProtoError {
    ProtoError::Shape(msg.into())
}

/// Lowercase hex of `bytes` — how a REPLICATE entry travels inside its
/// JSON line (the payload is raw spill-format bytes, not UTF-8).
fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// A `u64` list (digests, cache keys) as one hex string — 16 chars per
/// value, big-endian, no separators. Far denser on the wire than a JSON
/// number array, and immune to the f64 precision loss 64-bit keys would
/// suffer inside JSON numbers.
fn hex_u64s(values: &[u64]) -> String {
    let mut s = String::with_capacity(values.len() * 16);
    for v in values {
        s.push_str(&format!("{v:016x}"));
    }
    s
}

fn u64s_from_hex(s: &str) -> Option<Vec<u64>> {
    if !s.len().is_multiple_of(16) {
        return None;
    }
    (0..s.len())
        .step_by(16)
        .map(|i| u64::from_str_radix(s.get(i..i + 16)?, 16).ok())
        .collect()
}

// ---------------------------------------------------------------- encoding

/// Serializes [`EnvelopeStats`] — shared by service responses and the CLI's
/// `--json` mode so both emit the identical record.
pub fn stats_to_json(s: &EnvelopeStats) -> Json {
    Json::obj(vec![
        ("envelope", Json::Num(s.envelope_size as f64)),
        ("bandwidth", Json::Num(s.bandwidth as f64)),
        ("envelope_work", Json::Num(s.envelope_work as f64)),
        ("one_sum", Json::Num(s.one_sum as f64)),
        ("two_sum_sq", Json::Num(s.two_sum_sq as f64)),
    ])
}

/// Parses the output of [`stats_to_json`].
pub fn stats_from_json(v: &Json) -> Result<EnvelopeStats, ProtoError> {
    let f = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| shape(format!("stats.{k}")))
    };
    Ok(EnvelopeStats {
        envelope_size: f("envelope")?,
        bandwidth: f("bandwidth")?,
        envelope_work: f("envelope_work")?,
        one_sum: f("one_sum")?,
        two_sum_sq: f("two_sum_sq")?,
    })
}

/// A binary frame scheduled to follow a response line (binary mode only).
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// Frame bytes rendered for this response alone.
    Owned(Vec<u8>),
    /// Frame bytes shared with the ordering cache (zero-copy hit path).
    Cached(Arc<EncodedPerm>),
}

impl FramePayload {
    /// The complete frame bytes to put on the wire.
    pub fn bytes(&self) -> &[u8] {
        match self {
            FramePayload::Owned(b) => b,
            FramePayload::Cached(e) => e.frame(),
        }
    }
}

/// Serializes an [`OrderResponse`] body (without the `ok` flag); in binary
/// mode the permutation is replaced by a `"perm_frame":true` marker and its
/// frame is pushed onto `frames`.
fn order_body_to_json(r: &OrderResponse, mode: FrameMode, frames: &mut Vec<FramePayload>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("alg", Json::Str(r.alg.clone())),
        ("n", Json::Num(r.n as f64)),
        ("nnz", Json::Num(r.nnz as f64)),
        ("stats", stats_to_json(&r.stats)),
        ("cache_hit", Json::Bool(r.cache_hit)),
        ("micros", Json::Num(r.micros as f64)),
    ];
    if let Some(ratio) = r.compression_ratio {
        pairs.push(("compression_ratio", Json::Num(ratio)));
    }
    if let Some(reason) = &r.degraded {
        pairs.push(("degraded", Json::Bool(true)));
        pairs.push(("degraded_reason", Json::Str(reason.clone())));
    }
    if let Some(trace) = &r.trace {
        pairs.push(("trace", Json::Raw(Arc::clone(trace))));
    }
    match (&r.perm, mode) {
        (None, _) | (Some(PermPayload::Framed), _) => {}
        (Some(p), FrameMode::Ndjson) => {
            let raw = match p {
                PermPayload::Cached(e) => Json::Raw(Arc::clone(e.json())),
                other => Json::Raw(encode_perm_json(other.order()).into()),
            };
            pairs.push(("perm", raw));
        }
        (Some(p), FrameMode::Binary) => {
            pairs.push(("perm_frame", Json::Bool(true)));
            frames.push(match p {
                PermPayload::Cached(e) => FramePayload::Cached(Arc::clone(e)),
                other => FramePayload::Owned(encode_perm_frame(other.order())),
            });
        }
    }
    Json::obj(pairs)
}

/// Serializes an [`OrderResponse`] body in NDJSON mode (the CLI's `--json`
/// output and the default wire form).
pub fn order_response_to_json(r: &OrderResponse) -> Json {
    order_body_to_json(r, FrameMode::Ndjson, &mut Vec::new())
}

fn order_response_from_json(v: &Json) -> Result<OrderResponse, ProtoError> {
    let perm = match (v.get("perm"), v.get("perm_frame").and_then(Json::as_bool)) {
        (Some(_), Some(true)) => return Err(shape("a body cannot carry both perm and perm_frame")),
        (None, Some(true)) => Some(PermPayload::Framed),
        (None, _) => None,
        (Some(arr), _) => {
            let items = arr.as_arr().ok_or_else(|| shape("perm must be an array"))?;
            Some(PermPayload::Plain(
                items
                    .iter()
                    .map(|x| x.as_u64().map(|u| u as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or_else(|| shape("perm entries must be integers"))?,
            ))
        }
    };
    Ok(OrderResponse {
        alg: v
            .get("alg")
            .and_then(Json::as_str)
            .ok_or_else(|| shape("missing alg"))?
            .to_string(),
        n: v.get("n")
            .and_then(Json::as_u64)
            .ok_or_else(|| shape("missing n"))? as usize,
        nnz: v
            .get("nnz")
            .and_then(Json::as_u64)
            .ok_or_else(|| shape("missing nnz"))? as usize,
        stats: stats_from_json(v.get("stats").ok_or_else(|| shape("missing stats"))?)?,
        perm,
        cache_hit: v.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
        micros: v.get("micros").and_then(Json::as_u64).unwrap_or(0),
        compression_ratio: v.get("compression_ratio").and_then(Json::as_f64),
        degraded: match v.get("degraded").and_then(Json::as_bool) {
            Some(true) => Some(
                v.get("degraded_reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            ),
            _ => None,
        },
        trace: v.get("trace").map(|t| t.to_string_compact().into()),
    })
}

fn error_to_json(e: &ErrorResponse) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(e.error.clone())),
        ("retriable", Json::Bool(e.retriable)),
    ])
}

/// Serializes a [`Response`] to its NDJSON wire line (no trailing newline).
pub fn encode_response(r: &Response) -> String {
    encode_response_framed(r, FrameMode::Ndjson).0
}

/// Serializes a [`Response`] under the given frame mode: the header line
/// (no trailing newline) plus the binary frames to send after it, in order.
/// In NDJSON mode the frame list is always empty.
pub fn encode_response_framed(r: &Response, mode: FrameMode) -> (String, Vec<FramePayload>) {
    encode_response_tagged(r, mode, None)
}

/// [`encode_response_framed`] with an optional protocol-v2 response tag:
/// when `id` is given, `"id":N` is spliced in right after `"ok"` so
/// pipelined clients can match out-of-order completions. With `id: None`
/// the bytes are identical to the v1 encoding.
pub fn encode_response_tagged(
    r: &Response,
    mode: FrameMode,
    id: Option<u64>,
) -> (String, Vec<FramePayload>) {
    let mut frames = Vec::new();
    let v = response_to_json(r, mode, &mut frames);
    let v = match (id, v) {
        (Some(id), Json::Obj(mut pairs)) => {
            pairs.insert(pairs.len().min(1), ("id".to_string(), Json::Num(id as f64)));
            Json::Obj(pairs)
        }
        (_, v) => v,
    };
    (v.to_string_compact(), frames)
}

fn response_to_json(r: &Response, mode: FrameMode, frames: &mut Vec<FramePayload>) -> Json {
    match r {
        Response::Hello {
            frames: mode,
            proto,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("hello", Json::Bool(true)),
            ("frames", Json::Str(mode.wire_name().to_string())),
            ("proto", Json::Num(*proto as f64)),
        ]),
        Response::Order(o) => order_body_to_json(o, mode, frames),
        Response::Batch(items) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "responses",
                Json::Arr(
                    items
                        .iter()
                        .map(|item| match item {
                            Ok(o) => order_body_to_json(o, mode, frames),
                            Err(e) => error_to_json(e),
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Stats(s) => Json::obj(vec![("ok", Json::Bool(true)), ("stats", s.clone())]),
        Response::Metrics(text) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", Json::Str(text.clone())),
        ]),
        Response::CancelOk { pending } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("cancelled", Json::Bool(true)),
            ("pending", Json::Bool(*pending)),
        ]),
        Response::ShutdownOk { drained } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("shutdown", Json::Bool(true)),
            ("drained", Json::Num(*drained as f64)),
        ]),
        Response::ReplicateOk { stored } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("replicated", Json::Bool(true)),
            ("stored", Json::Bool(*stored)),
        ]),
        Response::Pong { from } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("pong", Json::Bool(true)),
            ("from", Json::Str(from.clone())),
        ]),
        Response::JoinOk { members } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("joined", Json::Bool(true)),
            (
                "members",
                Json::Arr(members.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
        ]),
        Response::LeaveOk => Json::obj(vec![("ok", Json::Bool(true)), ("left", Json::Bool(true))]),
        Response::SyncOk { shards, keys } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("sync", Json::Bool(true)),
            (
                "shards",
                Json::Arr(shards.iter().map(|s| Json::Num(*s as f64)).collect()),
            ),
            ("keys", Json::Str(hex_u64s(keys))),
        ]),
        Response::WarmOk { entries } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("warm", Json::Bool(true)),
            (
                "entries",
                Json::Arr(entries.iter().map(|e| Json::Str(hex_encode(e))).collect()),
            ),
        ]),
        Response::Progress(p) => {
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("progress", Json::Bool(true)),
                ("id", Json::Num(p.id as f64)),
                ("stage", Json::Str(p.stage.clone())),
                ("percent", Json::Num(p.percent)),
                ("micros", Json::Num(p.micros as f64)),
            ];
            if let Some(m) = p.matvecs {
                pairs.push(("matvecs", Json::Num(m as f64)));
            }
            Json::obj(pairs)
        }
        Response::Error(e) => error_to_json(e),
    }
}

/// Parses a response line.
pub fn decode_response(line: &str) -> Result<Response, ProtoError> {
    let v = parse(line).map_err(ProtoError::Json)?;
    response_from_json(&v)
}

/// Parses a response line from a protocol-v2 connection, returning the
/// `"id"` tag (when present) alongside the response. PROGRESS lines carry
/// their id inside the frame as well; untagged lines (HELLO acks, inline
/// control responses on v1) return `None`.
pub fn decode_tagged_response(line: &str) -> Result<(Option<u64>, Response), ProtoError> {
    let v = parse(line).map_err(ProtoError::Json)?;
    let id = v.get("id").and_then(Json::as_u64);
    Ok((id, response_from_json(&v)?))
}

fn response_from_json(v: &Json) -> Result<Response, ProtoError> {
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| shape("missing ok"))?;
    if !ok {
        return Ok(Response::Error(ErrorResponse {
            error: v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string(),
            retriable: v.get("retriable").and_then(Json::as_bool).unwrap_or(false),
        }));
    }
    if v.get("progress").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::Progress(ProgressFrame {
            id: v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| shape("PROGRESS needs an id"))?,
            stage: v
                .get("stage")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            percent: v.get("percent").and_then(Json::as_f64).unwrap_or(0.0),
            micros: v.get("micros").and_then(Json::as_u64).unwrap_or(0),
            matvecs: v.get("matvecs").and_then(Json::as_u64),
        }));
    }
    if v.get("hello").and_then(Json::as_bool) == Some(true) {
        let name = v
            .get("frames")
            .and_then(Json::as_str)
            .ok_or_else(|| shape("HELLO ack needs a frames field"))?;
        let frames =
            FrameMode::from_wire(name).ok_or_else(|| shape(format!("unknown frames '{name}'")))?;
        let proto = v.get("proto").and_then(Json::as_u64).unwrap_or(1) as u32;
        return Ok(Response::Hello { frames, proto });
    }
    if let Some(items) = v.get("responses").and_then(Json::as_arr) {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if item.get("ok").and_then(Json::as_bool) == Some(true) {
                out.push(Ok(order_response_from_json(item)?));
            } else {
                out.push(Err(ErrorResponse {
                    error: item
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                        .to_string(),
                    retriable: item
                        .get("retriable")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                }));
            }
        }
        return Ok(Response::Batch(out));
    }
    if v.get("shutdown").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::ShutdownOk {
            drained: v.get("drained").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    if v.get("cancelled").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::CancelOk {
            pending: v.get("pending").and_then(Json::as_bool).unwrap_or(false),
        });
    }
    if v.get("replicated").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::ReplicateOk {
            stored: v.get("stored").and_then(Json::as_bool).unwrap_or(false),
        });
    }
    if v.get("pong").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::Pong {
            from: v
                .get("from")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    if v.get("joined").and_then(Json::as_bool) == Some(true) {
        let members = v
            .get("members")
            .and_then(Json::as_arr)
            .ok_or_else(|| shape("JOIN ack needs a members array"))?
            .iter()
            .map(|m| {
                m.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| shape("members must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Response::JoinOk { members });
    }
    if v.get("left").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::LeaveOk);
    }
    if v.get("sync").and_then(Json::as_bool) == Some(true) {
        let shards = v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| shape("SYNC ack needs a shards array"))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| shape("shards must be integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let keys = v
            .get("keys")
            .and_then(Json::as_str)
            .and_then(u64s_from_hex)
            .ok_or_else(|| shape("SYNC ack needs hex keys"))?;
        return Ok(Response::SyncOk { shards, keys });
    }
    if v.get("warm").and_then(Json::as_bool) == Some(true) {
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| shape("WARM ack needs an entries array"))?
            .iter()
            .map(|e| {
                e.as_str()
                    .and_then(hex_decode)
                    .ok_or_else(|| shape("entries must be hex strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Response::WarmOk { entries });
    }
    if let Some(text) = v.get("metrics").and_then(Json::as_str) {
        return Ok(Response::Metrics(text.to_string()));
    }
    if let Some(s) = v.get("stats") {
        // An ORDER response also carries "stats"; disambiguate by "alg".
        if v.get("alg").is_none() {
            return Ok(Response::Stats(s.clone()));
        }
    }
    Ok(Response::Order(order_response_from_json(v)?))
}

/// Serializes a [`Request`] to its wire line (no trailing newline).
pub fn encode_request(r: &Request) -> String {
    fn order_fields(o: &OrderRequest) -> Vec<(String, Json)> {
        let mut pairs = vec![
            ("cmd".to_string(), Json::Str("ORDER".to_string())),
            (
                "alg".to_string(),
                Json::Str(algorithm_wire_name(o.alg).to_string()),
            ),
        ];
        match &o.source {
            MatrixSource::Inline { format, payload } => {
                pairs.push((
                    "format".to_string(),
                    Json::Str(format.wire_name().to_string()),
                ));
                pairs.push(("payload".to_string(), Json::Str(payload.clone())));
            }
            MatrixSource::Path(p) => pairs.push(("path".to_string(), Json::Str(p.clone()))),
        }
        if let Some(t) = o.timeout_ms {
            pairs.push(("timeout_ms".to_string(), Json::Num(t as f64)));
        }
        if !o.include_perm {
            pairs.push(("include_perm".to_string(), Json::Bool(false)));
        }
        if let Some(t) = o.threads {
            pairs.push(("threads".to_string(), Json::Num(t as f64)));
        }
        if o.compressed {
            pairs.push(("compressed".to_string(), Json::Bool(true)));
        }
        if o.trace {
            pairs.push(("trace".to_string(), Json::Bool(true)));
        }
        if let Some(id) = o.id {
            pairs.push(("id".to_string(), Json::Num(id as f64)));
        }
        if o.progress {
            pairs.push(("progress".to_string(), Json::Bool(true)));
        }
        if o.hop {
            pairs.push(("hop".to_string(), Json::Bool(true)));
        }
        pairs
    }
    let v = match r {
        Request::Hello { frames, proto } => {
            let mut pairs = vec![
                ("cmd", Json::Str("HELLO".to_string())),
                ("frames", Json::Str(frames.wire_name().to_string())),
            ];
            // Encoded only when asking for more than v1, so the bytes a
            // v1 client puts on the wire are unchanged.
            if *proto >= 2 {
                pairs.push(("proto", Json::Num(*proto as f64)));
            }
            Json::obj(pairs)
        }
        Request::Order(o) => Json::Obj(order_fields(o)),
        Request::Batch(items) => Json::obj(vec![
            ("cmd", Json::Str("BATCH".to_string())),
            (
                "requests",
                Json::Arr(items.iter().map(|o| Json::Obj(order_fields(o))).collect()),
            ),
        ]),
        Request::Stats => Json::obj(vec![("cmd", Json::Str("STATS".to_string()))]),
        Request::Cancel { id } => Json::obj(vec![
            ("cmd", Json::Str("CANCEL".to_string())),
            ("id", Json::Num(*id as f64)),
        ]),
        Request::Metrics => Json::obj(vec![("cmd", Json::Str("METRICS".to_string()))]),
        Request::Replicate { entry } => Json::obj(vec![
            ("cmd", Json::Str("REPLICATE".to_string())),
            ("entry", Json::Str(hex_encode(entry))),
        ]),
        Request::Ping { from } => Json::obj(vec![
            ("cmd", Json::Str("PING".to_string())),
            ("from", Json::Str(from.clone())),
        ]),
        Request::Join { from } => Json::obj(vec![
            ("cmd", Json::Str("JOIN".to_string())),
            ("from", Json::Str(from.clone())),
        ]),
        Request::Leave { from } => Json::obj(vec![
            ("cmd", Json::Str("LEAVE".to_string())),
            ("from", Json::Str(from.clone())),
        ]),
        Request::Sync { from, digests } => Json::obj(vec![
            ("cmd", Json::Str("SYNC".to_string())),
            ("from", Json::Str(from.clone())),
            ("digests", Json::Str(hex_u64s(digests))),
        ]),
        Request::Warm { from } => Json::obj(vec![
            ("cmd", Json::Str("WARM".to_string())),
            ("from", Json::Str(from.clone())),
        ]),
        Request::Shutdown => Json::obj(vec![("cmd", Json::Str("SHUTDOWN".to_string()))]),
    };
    v.to_string_compact()
}

fn order_request_from_json(v: &Json) -> Result<OrderRequest, ProtoError> {
    let alg_name = v.get("alg").and_then(Json::as_str).unwrap_or("spectral");
    let alg = parse_algorithm(alg_name).ok_or_else(|| {
        shape(format!(
            "unknown algorithm '{alg_name}' (expected one of: {})",
            algorithm_names()
        ))
    })?;
    let source = match (v.get("payload"), v.get("path")) {
        (Some(payload), None) => {
            let payload = payload
                .as_str()
                .ok_or_else(|| shape("payload must be a string"))?
                .to_string();
            let format = match v.get("format") {
                Some(f) => {
                    let name = f.as_str().ok_or_else(|| shape("format must be a string"))?;
                    MatrixFormat::from_wire(name)
                        .ok_or_else(|| shape(format!("unknown format '{name}'")))?
                }
                None => MatrixFormat::MatrixMarket,
            };
            MatrixSource::Inline { format, payload }
        }
        (None, Some(path)) => MatrixSource::Path(
            path.as_str()
                .ok_or_else(|| shape("path must be a string"))?
                .to_string(),
        ),
        (Some(_), Some(_)) => return Err(shape("give either payload or path, not both")),
        (None, None) => return Err(shape("ORDER needs a payload or a path")),
    };
    let timeout_ms = match v.get("timeout_ms") {
        None => None,
        Some(t) => Some(
            t.as_u64()
                .ok_or_else(|| shape("timeout_ms must be an integer"))?,
        ),
    };
    let threads = match v.get("threads") {
        None => None,
        Some(t) => {
            let t = t
                .as_u64()
                .ok_or_else(|| shape("threads must be an integer"))?;
            if t > MAX_REQUEST_THREADS as u64 {
                return Err(shape(format!(
                    "threads must be at most {MAX_REQUEST_THREADS}"
                )));
            }
            Some(t as usize)
        }
    };
    let id = match v.get("id") {
        None => None,
        Some(i) => Some(i.as_u64().ok_or_else(|| shape("id must be an integer"))?),
    };
    Ok(OrderRequest {
        alg,
        source,
        timeout_ms,
        include_perm: v
            .get("include_perm")
            .and_then(Json::as_bool)
            .unwrap_or(true),
        threads,
        compressed: v.get("compressed").and_then(Json::as_bool).unwrap_or(false),
        trace: v.get("trace").and_then(Json::as_bool).unwrap_or(false),
        id,
        progress: v.get("progress").and_then(Json::as_bool).unwrap_or(false),
        hop: v.get("hop").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Parses a request line.
pub fn decode_request(line: &str) -> Result<Request, ProtoError> {
    let v = parse(line).map_err(ProtoError::Json)?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| shape("missing cmd"))?;
    match cmd.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let frames = match v.get("frames") {
                None => FrameMode::Ndjson,
                Some(f) => {
                    let name = f.as_str().ok_or_else(|| shape("frames must be a string"))?;
                    FrameMode::from_wire(name)
                        .ok_or_else(|| shape(format!("unknown frames '{name}'")))?
                }
            };
            let proto = match v.get("proto") {
                None => 1,
                Some(p) => {
                    let p = p
                        .as_u64()
                        .ok_or_else(|| shape("proto must be an integer"))?;
                    if p == 0 {
                        return Err(shape("proto must be at least 1"));
                    }
                    p.min(u32::MAX as u64) as u32
                }
            };
            Ok(Request::Hello { frames, proto })
        }
        "ORDER" => Ok(Request::Order(order_request_from_json(&v)?)),
        "BATCH" => {
            let items = v
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| shape("BATCH needs a requests array"))?;
            if items.is_empty() {
                return Err(shape("BATCH must contain at least one request"));
            }
            items
                .iter()
                .map(order_request_from_json)
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Batch)
        }
        "STATS" => Ok(Request::Stats),
        "CANCEL" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| shape("CANCEL needs an integer id"))?;
            Ok(Request::Cancel { id })
        }
        "METRICS" => Ok(Request::Metrics),
        "REPLICATE" => {
            let entry = v
                .get("entry")
                .and_then(Json::as_str)
                .ok_or_else(|| shape("REPLICATE needs a hex entry string"))?;
            Ok(Request::Replicate {
                entry: hex_decode(entry).ok_or_else(|| shape("entry is not valid hex"))?,
            })
        }
        "PING" | "JOIN" | "LEAVE" | "WARM" => {
            let from = v
                .get("from")
                .and_then(Json::as_str)
                .ok_or_else(|| shape(format!("{cmd} needs a from address")))?
                .to_string();
            Ok(match cmd.to_ascii_uppercase().as_str() {
                "PING" => Request::Ping { from },
                "JOIN" => Request::Join { from },
                "LEAVE" => Request::Leave { from },
                _ => Request::Warm { from },
            })
        }
        "SYNC" => {
            let from = v
                .get("from")
                .and_then(Json::as_str)
                .ok_or_else(|| shape("SYNC needs a from address"))?
                .to_string();
            let digests = v
                .get("digests")
                .and_then(Json::as_str)
                .and_then(u64s_from_hex)
                .ok_or_else(|| shape("SYNC needs a hex digests string"))?;
            Ok(Request::Sync { from, digests })
        }
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(shape(format!("unknown cmd '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> EnvelopeStats {
        EnvelopeStats {
            envelope_size: 10,
            envelope_work: 40,
            bandwidth: 3,
            one_sum: 15,
            two_sum_sq: 55,
        }
    }

    #[test]
    fn order_request_roundtrip() {
        let req = Request::Order(OrderRequest {
            alg: Algorithm::Rcm,
            source: MatrixSource::Inline {
                format: MatrixFormat::MatrixMarket,
                payload:
                    "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 2 1.0\n"
                        .into(),
            },
            timeout_ms: Some(1500),
            include_perm: false,
            threads: Some(4),
            compressed: true,
            trace: true,
            id: Some(77),
            progress: true,
            hop: false,
        });
        let line = encode_request(&req);
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn hop_flag_roundtrips_and_defaults_off() {
        // Non-mesh request bytes are unchanged: hop only appears when set.
        let mut o = OrderRequest::inline_mtx(Algorithm::Rcm, "x");
        assert!(!encode_request(&Request::Order(o.clone())).contains("hop"));
        o.hop = true;
        let line = encode_request(&Request::Order(o.clone()));
        assert!(line.contains(r#""hop":true"#));
        assert_eq!(decode_request(&line).unwrap(), Request::Order(o));
        match decode_request(r#"{"cmd":"ORDER","path":"/m.mtx"}"#).unwrap() {
            Request::Order(o) => assert!(!o.hop),
            other => panic!("expected ORDER, got {other:?}"),
        }
    }

    #[test]
    fn replicate_roundtrips_and_rejects_bad_hex() {
        let req = Request::Replicate {
            entry: vec![0x00, 0xff, 0x53, 0x4f, 0x43, 0x46],
        };
        let line = encode_request(&req);
        assert!(line.contains(r#""cmd":"REPLICATE""#));
        assert!(line.contains("00ff534f4346"));
        assert_eq!(decode_request(&line).unwrap(), req);
        for bad in [
            r#"{"cmd":"REPLICATE"}"#,
            r#"{"cmd":"REPLICATE","entry":"abc"}"#,
            r#"{"cmd":"REPLICATE","entry":"zz"}"#,
        ] {
            assert!(decode_request(bad).is_err(), "should reject {bad}");
        }
        for stored in [true, false] {
            let resp = Response::ReplicateOk { stored };
            let line = encode_response(&resp);
            assert!(line.contains(r#""replicated":true"#));
            assert_eq!(decode_response(&line).unwrap(), resp);
        }
    }

    #[test]
    fn membership_commands_roundtrip() {
        let from = "10.0.0.1:7878".to_string();
        for req in [
            Request::Ping { from: from.clone() },
            Request::Join { from: from.clone() },
            Request::Leave { from: from.clone() },
            Request::Warm { from: from.clone() },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        // All four carry a sender; a missing one is a shape error.
        for cmd in ["PING", "JOIN", "LEAVE", "WARM"] {
            assert!(decode_request(&format!(r#"{{"cmd":"{cmd}"}}"#)).is_err());
        }

        let resp = Response::Pong { from: from.clone() };
        let line = encode_response(&resp);
        assert!(line.contains(r#""pong":true"#));
        assert_eq!(decode_response(&line).unwrap(), resp);

        let resp = Response::JoinOk {
            members: vec!["a:1".into(), "b:2".into()],
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""joined":true"#));
        assert_eq!(decode_response(&line).unwrap(), resp);

        let resp = Response::LeaveOk;
        let line = encode_response(&resp);
        assert!(line.contains(r#""left":true"#));
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn sync_and_warm_roundtrip_with_hex_u64_lists() {
        // u64 digests above 2^53 must survive the JSON hop bit-exactly,
        // which is why they travel as hex strings rather than numbers.
        let big = u64::MAX - 3;
        let req = Request::Sync {
            from: "10.0.0.1:7878".into(),
            digests: vec![0, 1, big],
        };
        let line = encode_request(&req);
        assert!(line.contains(r#""cmd":"SYNC""#));
        assert_eq!(decode_request(&line).unwrap(), req);
        assert!(decode_request(r#"{"cmd":"SYNC","from":"a:1"}"#).is_err());
        assert!(decode_request(r#"{"cmd":"SYNC","from":"a:1","digests":"123"}"#).is_err());

        let resp = Response::SyncOk {
            shards: vec![0, 5, 11],
            keys: vec![big, 42],
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""sync":true"#));
        assert_eq!(decode_response(&line).unwrap(), resp);

        let entry = crate::persist::encode_entry(&crate::persist::PersistedEntry {
            key: 0xfeed,
            n: 3,
            adjacency_len: 2,
            stats: sparsemat::envelope::EnvelopeStats {
                envelope_size: 1,
                bandwidth: 1,
                envelope_work: 2,
                one_sum: 3,
                two_sum_sq: 4,
            },
            compression_ratio: None,
            degraded: None,
            perm: vec![0, 1, 2],
        });
        let resp = Response::WarmOk {
            entries: vec![entry.clone(), entry],
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""warm":true"#));
        assert_eq!(decode_response(&line).unwrap(), resp);
        // An empty warm answer (nothing owned) is legal.
        let empty = Response::WarmOk { entries: vec![] };
        assert_eq!(decode_response(&encode_response(&empty)).unwrap(), empty);
    }

    #[test]
    fn hello_roundtrip_and_defaults() {
        for frames in [FrameMode::Ndjson, FrameMode::Binary] {
            for proto in [1, 2] {
                let req = Request::Hello { frames, proto };
                assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
                let resp = Response::Hello { frames, proto };
                assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
            }
        }
        // frames defaults to ndjson, proto to 1; unknowns are shape errors.
        assert_eq!(
            decode_request(r#"{"cmd":"HELLO"}"#).unwrap(),
            Request::Hello {
                frames: FrameMode::Ndjson,
                proto: 1,
            }
        );
        assert!(decode_request(r#"{"cmd":"HELLO","frames":"smoke"}"#).is_err());
        assert!(decode_request(r#"{"cmd":"HELLO","proto":0}"#).is_err());
        // A v1 HELLO encodes without a proto key — bytes unchanged from
        // pre-v2 clients — while v2 asks explicitly.
        let v1 = encode_request(&Request::Hello {
            frames: FrameMode::Ndjson,
            proto: 1,
        });
        assert!(!v1.contains("proto"));
        let v2 = encode_request(&Request::Hello {
            frames: FrameMode::Ndjson,
            proto: 2,
        });
        assert!(v2.contains(r#""proto":2"#));
    }

    #[test]
    fn progress_frame_roundtrips() {
        let with_matvecs = Response::Progress(ProgressFrame {
            id: 9,
            stage: "lanczos".into(),
            percent: 20.0,
            micros: 1500,
            matvecs: Some(64),
        });
        let line = encode_response(&with_matvecs);
        assert!(line.contains(r#""progress":true"#));
        assert_eq!(decode_response(&line).unwrap(), with_matvecs);
        // The id also surfaces through the tagged decoder.
        let (id, resp) = decode_tagged_response(&line).unwrap();
        assert_eq!(id, Some(9));
        assert_eq!(resp, with_matvecs);
        let without = Response::Progress(ProgressFrame {
            id: 3,
            stage: "level[2]".into(),
            percent: 60.5,
            micros: 88,
            matvecs: None,
        });
        let line = encode_response(&without);
        assert!(!line.contains("matvecs"));
        assert_eq!(decode_response(&line).unwrap(), without);
        // Progress without an id is malformed.
        assert!(decode_response(r#"{"ok":true,"progress":true,"stage":"x"}"#).is_err());
    }

    #[test]
    fn tagged_encoding_splices_id_after_ok() {
        let resp = Response::Order(OrderResponse {
            alg: "RCM".into(),
            n: 3,
            nnz: 5,
            stats: sample_stats(),
            perm: Some(vec![2, 0, 1].into()),
            cache_hit: false,
            micros: 7,
            compression_ratio: None,
            degraded: None,
            trace: None,
        });
        let (tagged, _) = encode_response_tagged(&resp, FrameMode::Ndjson, Some(41));
        assert!(tagged.starts_with(r#"{"ok":true,"id":41,"#), "got {tagged}");
        let (id, decoded) = decode_tagged_response(&tagged).unwrap();
        assert_eq!(id, Some(41));
        assert_eq!(decoded, resp);
        // Untagged encoding is byte-identical to the v1 encoder.
        let (untagged, _) = encode_response_tagged(&resp, FrameMode::Ndjson, None);
        assert_eq!(untagged, encode_response(&resp));
        // Errors are taggable too — a pipelined failure must still name
        // the request it answers.
        let err = Response::Error(ErrorResponse::retriable("queue full"));
        let (line, _) = encode_response_tagged(&err, FrameMode::Ndjson, Some(5));
        assert!(line.starts_with(r#"{"ok":false,"id":5,"#), "got {line}");
        let (id, decoded) = decode_tagged_response(&line).unwrap();
        assert_eq!(id, Some(5));
        assert_eq!(decoded, err);
    }

    #[test]
    fn compressed_defaults_to_false() {
        match decode_request(r#"{"cmd":"ORDER","path":"/m.mtx"}"#).unwrap() {
            Request::Order(o) => assert!(!o.compressed),
            other => panic!("expected ORDER, got {other:?}"),
        }
        match decode_request(r#"{"cmd":"ORDER","path":"/m.mtx","compressed":true}"#).unwrap() {
            Request::Order(o) => assert!(o.compressed),
            other => panic!("expected ORDER, got {other:?}"),
        }
    }

    #[test]
    fn absurd_threads_rejected_at_decode() {
        let ok = format!(r#"{{"cmd":"ORDER","path":"/m.mtx","threads":{MAX_REQUEST_THREADS}}}"#);
        assert!(decode_request(&ok).is_ok());
        let too_big = format!(
            r#"{{"cmd":"ORDER","path":"/m.mtx","threads":{}}}"#,
            MAX_REQUEST_THREADS + 1
        );
        assert!(decode_request(&too_big).is_err());
        assert!(decode_request(r#"{"cmd":"ORDER","path":"/m.mtx","threads":1000000}"#).is_err());
    }

    #[test]
    fn batch_request_roundtrip() {
        let one = OrderRequest {
            alg: Algorithm::Spectral,
            source: MatrixSource::Path("/data/m.mtx".into()),
            timeout_ms: None,
            include_perm: true,
            threads: None,
            compressed: false,
            trace: false,
            id: None,
            progress: false,
            hop: false,
        };
        let req = Request::Batch(vec![one.clone(), one]);
        let line = encode_request(&req);
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn control_requests_roundtrip() {
        for r in [
            Request::Stats,
            Request::Metrics,
            Request::Cancel { id: 42 },
            Request::Shutdown,
        ] {
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }
        assert!(decode_request(r#"{"cmd":"CANCEL"}"#).is_err());
        assert!(decode_request(r#"{"cmd":"CANCEL","id":"seven"}"#).is_err());
    }

    #[test]
    fn trace_and_id_default_off() {
        match decode_request(r#"{"cmd":"ORDER","path":"/m.mtx"}"#).unwrap() {
            Request::Order(o) => {
                assert!(!o.trace);
                assert_eq!(o.id, None);
            }
            other => panic!("expected ORDER, got {other:?}"),
        }
        match decode_request(r#"{"cmd":"ORDER","path":"/m.mtx","trace":true,"id":9}"#).unwrap() {
            Request::Order(o) => {
                assert!(o.trace);
                assert_eq!(o.id, Some(9));
            }
            other => panic!("expected ORDER, got {other:?}"),
        }
        // An untraced response line carries no trace field at all.
        let resp = Response::Order(OrderResponse {
            alg: "RCM".into(),
            n: 2,
            nnz: 3,
            stats: sample_stats(),
            perm: None,
            cache_hit: false,
            micros: 1,
            compression_ratio: None,
            degraded: None,
            trace: None,
        });
        assert!(!encode_response(&resp).contains("trace"));
    }

    #[test]
    fn traced_response_splices_and_survives_roundtrip() {
        let tree =
            r#"{"name":"order","wall_micros":12,"children":[{"name":"stats","wall_micros":3}]}"#;
        let resp = Response::Order(OrderResponse {
            alg: "SPECTRAL".into(),
            n: 4,
            nnz: 10,
            stats: sample_stats(),
            perm: Some(vec![2, 0, 3, 1].into()),
            cache_hit: false,
            micros: 512,
            compression_ratio: None,
            degraded: None,
            trace: Some(tree.into()),
        });
        let line = encode_response(&resp);
        assert!(line.contains(r#""trace":{"name":"order""#));
        match decode_response(&line).unwrap() {
            Response::Order(o) => {
                let t = o.trace.expect("trace subtree");
                // Decoding re-renders the subtree; it stays an object with
                // the same structure.
                assert!(t.contains(r#""name":"order""#));
                assert!(t.contains(r#""name":"stats""#));
            }
            other => panic!("expected ORDER, got {other:?}"),
        }
    }

    #[test]
    fn metrics_and_cancel_responses_roundtrip() {
        let m =
            Response::Metrics("# HELP se_requests_total requests\nse_requests_total 3\n".into());
        assert_eq!(decode_response(&encode_response(&m)).unwrap(), m);
        for pending in [true, false] {
            let c = Response::CancelOk { pending };
            assert_eq!(decode_response(&encode_response(&c)).unwrap(), c);
        }
    }

    #[test]
    fn order_response_roundtrip() {
        let resp = Response::Order(OrderResponse {
            alg: "SPECTRAL".into(),
            n: 4,
            nnz: 10,
            stats: sample_stats(),
            perm: Some(vec![2, 0, 3, 1].into()),
            cache_hit: true,
            micros: 512,
            compression_ratio: Some(2.5),
            degraded: None,
            trace: None,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn degraded_response_roundtrips_and_clean_lines_omit_it() {
        let clean = OrderResponse {
            alg: "SPECTRAL".into(),
            n: 4,
            nnz: 10,
            stats: sample_stats(),
            perm: Some(vec![2, 0, 3, 1].into()),
            cache_hit: false,
            micros: 512,
            compression_ratio: None,
            degraded: None,
            trace: None,
        };
        assert!(!encode_response(&Response::Order(clean.clone())).contains("degraded"));
        let deg = Response::Order(OrderResponse {
            alg: "RCM".into(),
            degraded: Some("not_converged".into()),
            ..clean
        });
        let line = encode_response(&deg);
        assert!(line.contains(r#""degraded":true"#));
        assert!(line.contains(r#""degraded_reason":"not_converged""#));
        assert_eq!(decode_response(&line).unwrap(), deg);
    }

    #[test]
    fn cached_and_plain_perms_encode_identically() {
        let perm = vec![3usize, 1, 0, 2];
        let plain = OrderResponse {
            alg: "RCM".into(),
            n: 4,
            nnz: 7,
            stats: sample_stats(),
            perm: Some(PermPayload::Plain(perm.clone())),
            cache_hit: false,
            micros: 9,
            compression_ratio: None,
            degraded: None,
            trace: None,
        };
        let cached = OrderResponse {
            perm: Some(PermPayload::Cached(Arc::new(EncodedPerm::new(perm)))),
            cache_hit: true,
            ..plain.clone()
        };
        // NDJSON: identical except the cache_hit flag itself.
        let a = encode_response(&Response::Order(plain.clone()));
        let b = encode_response(&Response::Order(cached.clone()));
        assert_eq!(
            a.replace("\"cache_hit\":false", ""),
            b.replace("\"cache_hit\":true", "")
        );
        // Binary: same marker line shape, byte-identical frames.
        let (la, fa) = encode_response_framed(&Response::Order(plain), FrameMode::Binary);
        let (lb, fb) = encode_response_framed(&Response::Order(cached), FrameMode::Binary);
        assert!(la.contains("\"perm_frame\":true") && lb.contains("\"perm_frame\":true"));
        assert_eq!(fa.len(), 1);
        assert_eq!(fa[0].bytes(), fb[0].bytes());
        // PermPayload equality is content equality across variants.
        assert_eq!(
            PermPayload::Plain(vec![1, 0]),
            PermPayload::Cached(Arc::new(EncodedPerm::new(vec![1, 0])))
        );
    }

    #[test]
    fn framed_responses_decode_to_the_framed_marker() {
        let resp = Response::Order(OrderResponse {
            alg: "RCM".into(),
            n: 3,
            nnz: 5,
            stats: sample_stats(),
            perm: Some(vec![2, 0, 1].into()),
            cache_hit: false,
            micros: 11,
            compression_ratio: None,
            degraded: None,
            trace: None,
        });
        let (line, frames) = encode_response_framed(&resp, FrameMode::Binary);
        assert_eq!(frames.len(), 1);
        match decode_response(&line).unwrap() {
            Response::Order(o) => assert_eq!(o.perm, Some(PermPayload::Framed)),
            other => panic!("expected ORDER, got {other:?}"),
        }
        // A line claiming both representations is rejected.
        let both = line.replace(
            "\"perm_frame\":true",
            "\"perm_frame\":true,\"perm\":[2,0,1]",
        );
        assert!(decode_response(&both).is_err());
    }

    #[test]
    fn batch_response_roundtrip_with_mixed_outcomes() {
        let resp = Response::Batch(vec![
            Ok(OrderResponse {
                alg: "RCM".into(),
                n: 3,
                nnz: 5,
                stats: sample_stats(),
                perm: None,
                cache_hit: false,
                micros: 88,
                compression_ratio: None,
                degraded: None,
                trace: None,
            }),
            Err(ErrorResponse::retriable("queue full")),
        ]);
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_and_shutdown_responses_roundtrip() {
        let s = Response::Stats(Json::obj(vec![("requests", Json::Num(7.0))]));
        assert_eq!(decode_response(&encode_response(&s)).unwrap(), s);
        let d = Response::ShutdownOk { drained: 3 };
        assert_eq!(decode_response(&encode_response(&d)).unwrap(), d);
    }

    #[test]
    fn error_response_roundtrip() {
        let e = Response::Error(ErrorResponse::fatal("parse error: bad header"));
        assert_eq!(decode_response(&encode_response(&e)).unwrap(), e);
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "{}",
            r#"{"cmd":"NOPE"}"#,
            r#"{"cmd":"ORDER"}"#,
            r#"{"cmd":"ORDER","alg":"wat","payload":"x"}"#,
            r#"{"cmd":"ORDER","payload":"x","path":"y"}"#,
            r#"{"cmd":"BATCH"}"#,
            r#"{"cmd":"BATCH","requests":[]}"#,
            "not json",
        ] {
            assert!(decode_request(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn algorithm_vocabulary_matches_cli() {
        for (name, alg) in [
            ("spectral", Algorithm::Spectral),
            ("tracemin", Algorithm::TraceMin),
            ("rcm", Algorithm::Rcm),
            ("cm", Algorithm::CuthillMckee),
            ("gps", Algorithm::Gps),
            ("gk", Algorithm::Gk),
            ("sloan", Algorithm::Sloan),
            ("hybrid", Algorithm::HybridSloanSpectral),
            ("refined", Algorithm::SpectralRefined),
            ("mindeg", Algorithm::MinDegree),
            ("nd", Algorithm::SpectralNd),
        ] {
            assert_eq!(parse_algorithm(name), Some(alg));
        }
        assert_eq!(parse_algorithm("bogus"), None);
    }

    #[test]
    fn every_algorithm_roundtrips_through_the_wire_name() {
        // encode → decode must be the identity for every table row; this
        // also pins the encode path to the table (Algorithm::name() produces
        // labels like SPECTRAL+X that do not parse).
        for &(name, alg) in ALGORITHMS {
            assert_eq!(parse_algorithm(algorithm_wire_name(alg)), Some(alg));
            assert_eq!(algorithm_wire_name(alg), name);
            let req = Request::Order(OrderRequest::inline_mtx(alg, "stub"));
            let line = encode_request(&req);
            match decode_request(&line).expect("encoded request decodes") {
                Request::Order(o) => assert_eq!(o.alg, alg, "{name}"),
                other => panic!("unexpected decode: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_algorithm_error_enumerates_the_vocabulary() {
        let err = decode_request(r#"{"cmd":"ORDER","alg":"bogus","path":"x.mtx"}"#).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm 'bogus'"), "{msg}");
        for &(name, _) in ALGORITHMS {
            assert!(msg.contains(name), "missing {name} in: {msg}");
        }
    }
}
