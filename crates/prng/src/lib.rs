//! Std-only deterministic pseudo-random numbers for the workspace.
//!
//! The crates in this repository only ever need *reproducible* randomness —
//! seeded start vectors for Lanczos/LOBPCG, scrambled test matrices, random
//! meshes — so a tiny in-tree generator removes the workspace's only hard
//! external dependency (`rand`) and keeps every build fully offline.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — the canonical 64-bit state-mixing generator; used for
//!   seeding and anywhere a few cheap values are enough,
//! * [`SmallRng`] — xoshiro256\*\* (Blackman–Vigna), seeded from a `u64`
//!   through splitmix64 exactly as `rand`'s `SmallRng` used to be on 64-bit
//!   targets.
//!
//! The API intentionally mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen`, `gen_range`, plus a `shuffle` helper), so call
//! sites read identically:
//!
//! ```
//! use se_prng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: f64 = rng.gen();            // uniform in [0, 1)
//! let b: bool = rng.gen();           // fair coin
//! let k = rng.gen_range(0..10usize); // uniform in 0..10
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! let _ = b;
//! ```

use std::ops::{Range, RangeInclusive};

/// Sebastiano Vigna's splitmix64: one multiply-xorshift round per output.
/// Passes BigCrush; ideal for seeding and light-duty streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's general-purpose small fast generator.
///
/// 256 bits of state, period `2²⁵⁶ − 1`, seeded via [`SplitMix64`] so that
/// any `u64` seed (including 0) yields a well-mixed state.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a `u64` seed (splitmix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        SmallRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (`f64` in `[0, 1)`, fair `bool`, or a
    /// full-range integer).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a (half-open or inclusive) integer range.
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (> 0) with Lemire-style rejection to
    /// avoid modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone: the largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.gen_range(0..=i);
            data.swap(i, j);
        }
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample(rng: &mut SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for u64 {
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from Vigna's splitmix64.c.
        let mut sm = SplitMix64::seed_from_u64(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_and_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = r.gen_range(5..=9u64);
            assert!((5..=9).contains(&v));
        }
        for _ in 0..500 {
            let v = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "seed 11 left identity (astronomically unlikely)"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(3..3usize);
    }
}
