//! The paper's flagship scenario: reorder an unstructured airfoil CFD mesh
//! (the BARTH4 structure class) with all six orderings, print the
//! comparison table, and write spy-plot images.
//!
//! Run: `cargo run --release --example airfoil_reordering`

use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::sparsemat::spy::SpyGrid;
use spectral_envelope_repro::spectral_env::report::compare_orderings;

fn main() {
    let standin = meshgen::standin("BARTH4").expect("BARTH4 standin exists");
    // Real meshes arrive with a generator numbering, not a banded one.
    let g = standin
        .pattern
        .permute(&meshgen::scramble(standin.pattern.n(), 0xA1F0))
        .expect("valid permutation");

    println!(
        "Airfoil mesh (BARTH4 stand-in): {} vertices, {} edges\n",
        g.n(),
        g.num_edges()
    );

    let algs = [
        Algorithm::Spectral,
        Algorithm::Gk,
        Algorithm::Gps,
        Algorithm::Rcm,
        Algorithm::Sloan,
        Algorithm::HybridSloanSpectral,
    ];
    let cmp = compare_orderings(&g, &algs).expect("orderings run");
    println!("{}", cmp.format_table("Airfoil reordering comparison"));

    let dir = std::path::Path::new("bench_out");
    std::fs::create_dir_all(dir).expect("create output dir");
    for row in &cmp.rows {
        let spy = SpyGrid::new(&g, &row.perm, 400).expect("spy");
        let path = dir.join(format!(
            "airfoil_{}.pgm",
            row.algorithm.name().to_lowercase()
        ));
        spy.write_pgm(&path).expect("write pgm");
        println!("wrote {}", path.display());
    }
    println!("\nThe SPECTRAL plot shows the paper's signature: a globally thin but");
    println!("wavy profile — larger bandwidth, much smaller envelope than RCM/GPS/GK.");
}
