//! File-format round trip: write a matrix in MatrixMarket and
//! Harwell–Boeing formats, read both back, and reorder the result — the
//! workflow for anyone who has the *original* paper matrices on disk.
//!
//! Run: `cargo run --release --example file_io [path/to/matrix.{mtx,rsa}]`
//!
//! With a path argument, the file is read (format detected by extension:
//! `.mtx` MatrixMarket, anything else Harwell–Boeing) and the four paper
//! orderings are compared on it.

use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::sparsemat::io::{
    harwell_boeing::write_harwell_boeing, matrix_market::write_matrix_market, read_harwell_boeing,
    read_matrix_market,
};
use spectral_envelope_repro::spectral_env::report::compare_orderings;

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let a = if path.ends_with(".mtx") {
            read_matrix_market(&path).expect("parse MatrixMarket file")
        } else {
            read_harwell_boeing(&path).expect("parse Harwell-Boeing file")
        };
        println!(
            "read {}: {} x {}, {} nonzeros",
            path,
            a.nrows(),
            a.ncols(),
            a.nnz()
        );
        let sym = a.symmetrize().expect("square matrix");
        let g = sym.pattern().expect("symmetric pattern");
        let cmp = compare_orderings(&g, &Algorithm::paper_set()).expect("orderings run");
        println!("{}", cmp.format_table(&format!("Orderings of {path}")));
        return;
    }

    // No argument: demonstrate a full round trip on a generated matrix.
    let g = meshgen::annulus_tri(10, 30, 5);
    let a = g.spd_matrix(1.0);
    let dir = std::env::temp_dir().join("spectral_env_io_demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mm = dir.join("mesh.mtx");
    write_matrix_market(&mm, &a).expect("write MatrixMarket");
    let back_mm = read_matrix_market(&mm).expect("read back");
    assert_eq!(a, back_mm);
    println!("MatrixMarket round trip OK: {}", mm.display());

    let hb = dir.join("mesh.rsa");
    write_harwell_boeing(&hb, &a, "MESH300").expect("write Harwell-Boeing");
    let back_hb = read_harwell_boeing(&hb).expect("read back");
    assert_eq!(a, back_hb);
    println!("Harwell-Boeing round trip OK: {}", hb.display());

    let cmp = compare_orderings(&g, &Algorithm::paper_set()).expect("orderings run");
    println!(
        "\n{}",
        cmp.format_table("Orderings of the round-tripped matrix")
    );
    println!("Tip: pass a path to a real BCSSTK*/NASA file to reproduce the paper's");
    println!("tables on the original data: cargo run --example file_io -- bcsstk29.rsa");
}
