//! Quickstart: reorder a small finite-element mesh with the spectral
//! algorithm and look at what happened.
//!
//! Run: `cargo run --release --example quickstart`

use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::sparsemat::envelope::envelope_stats;
use spectral_envelope_repro::sparsemat::spy::ascii_spy;
use spectral_envelope_repro::sparsemat::Permutation;
use spectral_envelope_repro::spectral_env::{reorder, report::compare_orderings};

fn main() {
    // A 30 x 8 structured mesh, deliberately scrambled the way a mesh
    // generator might number it.
    let mesh = meshgen::grid2d(30, 8);
    let scrambled = mesh
        .permute(&meshgen::scramble(mesh.n(), 7))
        .expect("valid permutation");
    let a = scrambled.spd_matrix(1.0);

    println!("Matrix: n = {}, nonzeros = {}", a.nrows(), a.nnz());
    let before = envelope_stats(&scrambled, &Permutation::identity(scrambled.n()));
    println!(
        "Original ordering: envelope = {}, bandwidth = {}\n",
        before.envelope_size, before.bandwidth
    );
    println!(
        "{}",
        ascii_spy(&scrambled, &Permutation::identity(scrambled.n()), 30)
    );

    // One call: spectral reordering (Algorithm 1 of the paper).
    let result = reorder(&a, Algorithm::Spectral).expect("matrix is symmetric & connected");
    println!(
        "Spectral ordering:  envelope = {}, bandwidth = {}  ({}x envelope reduction)\n",
        result.ordering.stats.envelope_size,
        result.ordering.stats.bandwidth,
        before.envelope_size / result.ordering.stats.envelope_size.max(1),
    );
    println!("{}", ascii_spy(&scrambled, &result.ordering.perm, 30));

    // And the full comparison table, like the paper's Tables 4.1-4.3.
    let cmp = compare_orderings(&scrambled, &Algorithm::paper_set()).expect("orderings run");
    println!("{}", cmp.format_table("All four paper algorithms:"));
}
