//! Spectral graph bisection — the sibling application the paper grew out
//! of (§1 cites Pothen–Simon–Liou's spectral nested dissection and the
//! Barnard–Simon multilevel bisection). The same Fiedler vector that orders
//! the matrix splits the mesh: vertices with component below the median go
//! to one half.
//!
//! Also demonstrates Fiedler's Theorem 2.5 empirically: both sign-halves
//! induce connected subgraphs.
//!
//! Run: `cargo run --release --example spectral_bisection`

use spectral_envelope_repro::eigen::multilevel::{fiedler, FiedlerOptions};
use spectral_envelope_repro::graph::bfs::{connected_components, induced_subgraph};

fn main() {
    // A wing-like graded mesh.
    let g = meshgen::graded_annulus_tri(4_000, 260, 0.95, 0x15EC);
    println!("mesh: {} vertices, {} edges", g.n(), g.num_edges());

    let f = fiedler(&g, &FiedlerOptions::default()).expect("mesh is connected");
    println!("λ₂ (algebraic connectivity) = {:.6e}", f.lambda2);

    // Split at the median component for a balanced bisection.
    let mut vals: Vec<f64> = f.vector.clone();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = vals[g.n() / 2];
    let part_a: Vec<usize> = (0..g.n()).filter(|&v| f.vector[v] < median).collect();
    let part_b: Vec<usize> = (0..g.n()).filter(|&v| f.vector[v] >= median).collect();

    let cut = g
        .edges()
        .filter(|&(u, v)| (f.vector[u] < median) != (f.vector[v] < median))
        .count();
    println!(
        "bisection: |A| = {}, |B| = {}, cut edges = {} ({:.2}% of edges)",
        part_a.len(),
        part_b.len(),
        cut,
        100.0 * cut as f64 / g.num_edges() as f64
    );

    // Theorem 2.5 (Fiedler): the vertices with eigenvector value above any
    // threshold induce a connected subgraph (and symmetrically below).
    for (name, part) in [
        ("A (below median)", &part_a),
        ("B (at/above median)", &part_b),
    ] {
        let (sub, _) = induced_subgraph(&g, part);
        let comps = connected_components(&sub);
        println!("part {name}: {} connected component(s)", comps.count());
    }

    // Balance + low cut = a good partition for parallel matvec: each half
    // keeps ~half the work with few cross-processor edges.
    assert!(part_a.len().abs_diff(part_b.len()) <= 1 + g.n() / 10);
    println!("\nThe identical eigenvector sorted end-to-end is the paper's envelope");
    println!("ordering; thresholded at the median it is a mesh partitioner.");
}
