//! A tour of the eigensolver stack: four different routes to the same
//! Fiedler pair, with accuracy and timing side by side.
//!
//! * dense Householder+QL — the `O(n³)` oracle,
//! * Lanczos with full reorthogonalization — the paper's "standard
//!   algorithm" (§3),
//! * LOBPCG — a modern locally-optimal iteration (extension),
//! * the multilevel scheme — the paper's contribution for making the
//!   computation fast at scale.
//!
//! Run: `cargo run --release --example eigensolver_tour`

use spectral_envelope_repro::eigen::dense::DenseSym;
use spectral_envelope_repro::eigen::lanczos::{lanczos_smallest, LanczosOptions};
use spectral_envelope_repro::eigen::lobpcg::{lobpcg_smallest, LobpcgOptions};
use spectral_envelope_repro::eigen::multilevel::{fiedler, FiedlerOptions};
use spectral_envelope_repro::eigen::op::{constant_unit_vector, LaplacianOp};
use std::time::Instant;

fn main() {
    // Small mesh: every solver, including the dense oracle.
    let small = meshgen::graded_annulus_tri(600, 80, 0.93, 0x70);
    println!(
        "small mesh: n = {}, edges = {}",
        small.n(),
        small.num_edges()
    );
    let dense = DenseSym::from_csr(&small.laplacian()).expect("densifiable");
    let t0 = Instant::now();
    let full = dense.eigh().expect("dense decomposition");
    let oracle = full.values[1];
    println!(
        "  dense oracle  λ₂ = {oracle:.6e}  ({:.3}s)\n",
        t0.elapsed().as_secs_f64()
    );

    let lop = LaplacianOp::new(&small);
    let deflate = vec![constant_unit_vector(small.n())];

    let t0 = Instant::now();
    let lz = lanczos_smallest(&lop, &deflate, 1, &LanczosOptions::default()).expect("ok");
    println!(
        "  lanczos       λ₂ = {:.6e}  err {:.1e}  {} steps   ({:.3}s)",
        lz.values[0],
        (lz.values[0] - oracle).abs(),
        lz.iterations,
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let lb = lobpcg_smallest(&lop, &deflate, None, &LobpcgOptions::default()).expect("ok");
    println!(
        "  lobpcg        λ₂ = {:.6e}  err {:.1e}  {} steps   ({:.3}s)",
        lb.value,
        (lb.value - oracle).abs(),
        lb.iterations,
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let ml = fiedler(&small, &FiedlerOptions::default()).expect("ok");
    println!(
        "  multilevel    λ₂ = {:.6e}  err {:.1e}  {} levels  ({:.3}s)",
        ml.lambda2,
        (ml.lambda2 - oracle).abs(),
        ml.levels,
        t0.elapsed().as_secs_f64()
    );

    // Large mesh: iterative solvers only — this is where the multilevel
    // scheme earns its keep.
    let big = meshgen::graded_annulus_tri(60_000, 2_600, 0.97, 0x71);
    println!("\nlarge mesh: n = {}, edges = {}", big.n(), big.num_edges());
    let lop = LaplacianOp::new(&big);
    let deflate = vec![constant_unit_vector(big.n())];

    let t0 = Instant::now();
    let ml = fiedler(&big, &FiedlerOptions::default()).expect("ok");
    let t_ml = t0.elapsed().as_secs_f64();
    println!("  multilevel    λ₂ = {:.6e}  ({t_ml:.3}s)", ml.lambda2);

    let t0 = Instant::now();
    let lb = lobpcg_smallest(
        &lop,
        &deflate,
        None,
        &LobpcgOptions {
            max_iter: 10_000,
            tol: 1e-7,
            ..Default::default()
        },
    )
    .expect("ok");
    let t_lb = t0.elapsed().as_secs_f64();
    println!(
        "  lobpcg        λ₂ = {:.6e}  ({t_lb:.3}s, {} iterations)",
        lb.value, lb.iterations
    );
    println!(
        "\nmultilevel speedup over LOBPCG at n = {}: {:.1}x",
        big.n(),
        t_lb / t_ml.max(1e-9)
    );
}
