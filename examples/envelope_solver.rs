//! A structural-analysis-style direct solve: assemble an SPD system on a
//! shell mesh, reorder, envelope-factorize and solve — then show how the
//! choice of ordering changes storage and factorization work (the paper's
//! Table 4.4 story, as an application).
//!
//! Run: `cargo run --release --example envelope_solver`

use spectral_envelope_repro::envelope::EnvelopeMatrix;
use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::spectral_env::{reorder_factor_solve, reorder_pattern};
use std::time::Instant;

fn main() {
    // A cylindrical shell with bilinear elements: 60 x 40 nodes.
    let g = meshgen::cylinder_shell_9point(60, 40);
    let a = g.spd_matrix(0.8);
    let n = a.nrows();
    println!("Shell model: n = {n}, nonzeros = {}\n", a.nnz());

    // A manufactured solution to verify against.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) / 8.0 - 1.0).collect();
    let b = a.matvec_alloc(&x_true);

    println!(
        "  {:<9} {:>12} {:>14} {:>12} {:>12}",
        "Ordering", "Envelope", "Factor flops", "Factor (s)", "max |err|"
    );
    for alg in [
        Algorithm::Spectral,
        Algorithm::HybridSloanSpectral,
        Algorithm::Sloan,
        Algorithm::Gk,
        Algorithm::Gps,
        Algorithm::Rcm,
    ] {
        let ordering = reorder_pattern(&g, alg).expect("ordering runs");
        let mut env =
            EnvelopeMatrix::from_csr_permuted(&a, &ordering.perm).expect("symmetric matrix");
        let t0 = Instant::now();
        let flops = env.factorize().expect("SPD");
        let secs = t0.elapsed().as_secs_f64();
        // Solve through the façade to exercise the full path.
        let (x, _) = reorder_factor_solve(&a, &b, alg).expect("solve");
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {:<9} {:>12} {:>14} {:>12.4} {:>12.2e}",
            alg.name(),
            ordering.stats.envelope_size,
            flops,
            secs,
            err
        );
    }
    println!("\nSmaller envelope -> fewer flops -> faster factorization, at identical");
    println!("solution accuracy: exactly the trade Table 4.4 of the paper reports.");
}
