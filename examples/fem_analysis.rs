//! End-to-end finite-element analysis — the paper's motivating workload
//! (§1: frontal/envelope methods are "the method of choice ... in many
//! structural engineering applications"). Assembles a real P1 stiffness
//! system on an annular mesh (geometry included, not just topology),
//! reorders it, and solves with the envelope Cholesky.
//!
//! Run: `cargo run --release --example fem_analysis`

use spectral_envelope_repro::envelope::EnvelopeMatrix;
use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::spectral_env::reorder_pattern;
use std::time::Instant;

fn main() {
    // A ring structure meshed with ~4.8k linear triangles.
    let mesh = meshgen::TriMesh::annulus(20, 120, 1.0, 4.0, 0xFE0);
    let n = mesh.n();
    println!(
        "FE model: {} nodes, {} triangles, annulus r ∈ [1, 4]",
        n,
        mesh.triangles.len()
    );

    // Implicit-dynamics-style system: K + σM (SPD).
    let a = mesh.shifted_stiffness(5.0);
    println!("assembled K + 5M: nnz = {}\n", a.nnz());

    // Manufactured load: the exact displacement is a smooth field.
    let u_true: Vec<f64> = mesh
        .coords
        .iter()
        .map(|&(x, y)| (0.7 * x).sin() + 0.4 * y * y / 16.0)
        .collect();
    let f = a.matvec_alloc(&u_true);

    let g = a.pattern().expect("assembled matrix is symmetric");
    println!(
        "  {:<10} {:>10} {:>14} {:>11} {:>12}",
        "ordering", "envelope", "factor flops", "factor (s)", "max |err|"
    );
    for alg in [
        Algorithm::Spectral,
        Algorithm::HybridSloanSpectral,
        Algorithm::Gk,
        Algorithm::Rcm,
    ] {
        let ordering = reorder_pattern(&g, alg).expect("ordering runs");
        let mut env = EnvelopeMatrix::from_csr_permuted(&a, &ordering.perm).expect("symmetric");
        let t0 = Instant::now();
        let flops = env.factorize().expect("K + σM is SPD");
        let secs = t0.elapsed().as_secs_f64();
        let pf = ordering.perm.apply(&f).expect("length matches");
        let pu = env.solve(&pf).expect("factorized");
        // Undo the permutation and compare to the manufactured field.
        let mut u = vec![0.0; n];
        for (k, &v) in ordering.perm.order().iter().enumerate() {
            u[v] = pu[k];
        }
        let err = u
            .iter()
            .zip(&u_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {:<10} {:>10} {:>14} {:>11.4} {:>12.2e}",
            alg.name(),
            ordering.stats.envelope_size,
            flops,
            secs,
            err
        );
    }
    println!("\nSame exact solve under every ordering (errors at rounding level);");
    println!("what the ordering buys is storage and factorization work.");
}
