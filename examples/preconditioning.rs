//! Ordering as a preconditioner preorder — §1 of the paper:
//! *"The RCM ordering has been found to be an effective preordering in
//! computing incomplete factorization preconditioners for preconditioned
//! conjugate gradients methods."*
//!
//! IC(0) keeps only the entries inside the matrix's own pattern, so the
//! quality of the dropped fill — and hence the PCG iteration count —
//! depends on the ordering. This example measures it.
//!
//! Run: `cargo run --release --example preconditioning`

use spectral_envelope_repro::envelope::{pcg, IncompleteCholesky, PcgOptions};
use spectral_envelope_repro::order::Algorithm;
use spectral_envelope_repro::spectral_env::reorder_pattern;

fn main() {
    // An ill-conditioned diffusion-like system on a graded airfoil mesh,
    // presented in a scrambled "mesh generator" ordering.
    let mesh = meshgen::graded_annulus_tri(5_000, 320, 0.955, 0x9C6);
    let g = mesh
        .permute(&meshgen::scramble(mesh.n(), 0xF00D))
        .expect("valid permutation");
    let a = g.spd_matrix(1e-3);
    let n = a.nrows();
    println!(
        "system: n = {n}, nnz = {}, shift 1e-3 (ill-conditioned)\n",
        a.nnz()
    );

    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 29 % 23) as f64) / 23.0 - 0.5)
        .collect();
    let opts = PcgOptions {
        max_iter: 4000,
        rtol: 1e-8,
    };

    // Plain CG baseline (ordering-independent).
    let plain = pcg(&a, &b, None, &opts);
    println!(
        "plain CG (no preconditioner):     {:>5} iterations (converged: {})",
        plain.iterations, plain.converged
    );

    println!("\nIC(0)-PCG under different preorderings:");
    println!(
        "  {:<10} {:>10} {:>12} {:>10}",
        "ordering", "envelope", "iterations", "converged"
    );
    for alg in [
        Algorithm::Identity,
        Algorithm::Rcm,
        Algorithm::Gps,
        Algorithm::Gk,
        Algorithm::Sloan,
        Algorithm::Spectral,
        Algorithm::HybridSloanSpectral,
    ] {
        let ordering = reorder_pattern(&g, alg).expect("ordering runs");
        let pa = a
            .permute_symmetric(&ordering.perm)
            .expect("permutation matches");
        let pb = ordering.perm.apply(&b).expect("length matches");
        let ic = IncompleteCholesky::robust(&pa).expect("IC(0) succeeds");
        let out = pcg(&pa, &pb, Some(&ic), &opts);
        println!(
            "  {:<10} {:>10} {:>12} {:>10}",
            alg.name(),
            ordering.stats.envelope_size,
            out.iterations,
            out.converged
        );
    }
    println!("\nExpected shape (Duff–Meurant): banded/envelope-reducing preorders");
    println!("(RCM, GK, SPECTRAL, …) need noticeably fewer IC-PCG iterations than");
    println!("the scrambled original ordering, and all far fewer than plain CG.");
}
